package adversary

import "repro/internal/hashmix"

// The hash-RNG primitives behind "deterministic by identity" fault
// schedules live in package hashmix (a leaf package, so the source tier
// can share them without import cycles); these forwards keep the
// adversary-side call sites (HashDelay, netrt.FaultPlan) unchanged.

// mix is hashmix.Mix, kept for this package's internal delay policies.
func mix(z uint64) uint64 { return hashmix.Mix(z) }

// unit is hashmix.Unit.
func unit(h uint64) float64 { return hashmix.Unit(h) }

// Mix64 folds a sequence of words into one well-mixed 64-bit hash. Equal
// word sequences give equal hashes; any differing word decorrelates the
// result completely.
func Mix64(words ...uint64) uint64 { return hashmix.Mix64(words...) }

// MixUnit maps a word sequence to a uniform value in (0, 1]. It is the
// decision primitive of seeded fault plans: p < rate decides a fault with
// probability rate, reproducibly for the same words.
func MixUnit(words ...uint64) float64 { return hashmix.MixUnit(words...) }
