// Package adversary implements the adversary of the DR model: scheduling
// policies that assign finite delays to every message and query
// (sim.DelayPolicy), crash schedules (sim.CrashPolicy), and generic
// Byzantine behaviors. Protocol-specific Byzantine attackers live next to
// the protocols they target.
//
// Delays are normalized so that one virtual time unit is the maximum
// latency of the default policy, matching the paper's time analysis.
package adversary

import (
	"math/rand"
	"sync"

	"repro/internal/sim"
)

// Fixed assigns the same delay D to every message and query and starts all
// peers at time 0. With D = 1 it models the lock-step worst case of the
// asynchronous analysis.
type Fixed struct {
	// D is the delay applied to every delivery; must be positive.
	D float64
}

var _ sim.DelayPolicy = (*Fixed)(nil)

// NewFixed returns a fixed-delay policy.
func NewFixed(d float64) *Fixed { return &Fixed{D: d} }

// MessageDelay implements sim.DelayPolicy.
func (f *Fixed) MessageDelay(_, _ sim.PeerID, _ float64, _ int) float64 { return f.D }

// QueryDelay implements sim.DelayPolicy.
func (f *Fixed) QueryDelay(_ sim.PeerID, _ float64) float64 { return f.D }

// StartDelay implements sim.DelayPolicy.
func (f *Fixed) StartDelay(_ sim.PeerID) float64 { return 0 }

// Random assigns independent uniform delays in (Min, Max] to every
// delivery and staggers peer start times uniformly in [0, Max). It is
// safe for concurrent use (the live runtime invokes it from many
// goroutines); under the des runtime, calls occur in a deterministic
// order, so executions are reproducible from the seed.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
	min float64
	max float64
	// stagger controls whether peers start at random offsets.
	stagger bool
}

var _ sim.DelayPolicy = (*Random)(nil)

// NewRandom returns a seeded random-delay policy over (min, max].
func NewRandom(seed int64, min, max float64) *Random {
	if min < 0 || max <= min {
		panic("adversary: need 0 <= min < max")
	}
	return &Random{rng: rand.New(rand.NewSource(seed)), min: min, max: max, stagger: true}
}

// NewRandomUnit returns the default normalized policy: delays in (0, 1].
func NewRandomUnit(seed int64) *Random { return NewRandom(seed, 0, 1) }

func (r *Random) draw() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.min + (r.max-r.min)*(1-r.rng.Float64()) // in (min, max]
}

// MessageDelay implements sim.DelayPolicy.
func (r *Random) MessageDelay(_, _ sim.PeerID, _ float64, _ int) float64 { return r.draw() }

// QueryDelay implements sim.DelayPolicy.
func (r *Random) QueryDelay(_ sim.PeerID, _ float64) float64 { return r.draw() }

// StartDelay implements sim.DelayPolicy.
func (r *Random) StartDelay(_ sim.PeerID) float64 {
	if !r.stagger {
		return 0
	}
	return r.draw() - r.min // in (0, max-min]
}

// TargetedSlow wraps a base policy and inflates the latency of every
// message sent BY peers in Slow to Delay. This is the adversary of the
// lower-bound constructions (Theorems 3.1/3.2): it isolates a victim from
// a chosen set of peers for long enough that the victim terminates without
// ever hearing from them, while still delivering every message eventually
// (finite delays, as the model requires).
type TargetedSlow struct {
	// Base supplies delays for unaffected traffic. Required.
	Base sim.DelayPolicy
	// Slow is the set of peers whose outgoing messages are delayed.
	Slow map[sim.PeerID]bool
	// Delay is the inflated latency; choose it larger than any plausible
	// termination time of the victim.
	Delay float64
	// SlowIncoming additionally delays messages sent TO slow peers,
	// fully partitioning them.
	SlowIncoming bool
}

var _ sim.DelayPolicy = (*TargetedSlow)(nil)

// NewTargetedSlow builds a TargetedSlow policy over base delaying the
// outgoing traffic of slow peers by delay.
func NewTargetedSlow(base sim.DelayPolicy, slow []sim.PeerID, delay float64) *TargetedSlow {
	m := make(map[sim.PeerID]bool, len(slow))
	for _, p := range slow {
		m[p] = true
	}
	return &TargetedSlow{Base: base, Slow: m, Delay: delay}
}

// MessageDelay implements sim.DelayPolicy.
func (t *TargetedSlow) MessageDelay(from, to sim.PeerID, now float64, size int) float64 {
	if t.Slow[from] || (t.SlowIncoming && t.Slow[to]) {
		return t.Delay
	}
	return t.Base.MessageDelay(from, to, now, size)
}

// QueryDelay implements sim.DelayPolicy.
func (t *TargetedSlow) QueryDelay(p sim.PeerID, now float64) float64 {
	return t.Base.QueryDelay(p, now)
}

// StartDelay implements sim.DelayPolicy.
func (t *TargetedSlow) StartDelay(p sim.PeerID) float64 { return t.Base.StartDelay(p) }

// SlowQueries wraps a base policy and inflates source-query latency by
// Factor, modeling the paper's premise that the source is the expensive,
// distant component. Useful in time-complexity experiments.
type SlowQueries struct {
	// Base supplies the underlying delays. Required.
	Base sim.DelayPolicy
	// Factor multiplies every query delay; must be positive.
	Factor float64
}

var _ sim.DelayPolicy = (*SlowQueries)(nil)

// MessageDelay implements sim.DelayPolicy.
func (s *SlowQueries) MessageDelay(from, to sim.PeerID, now float64, size int) float64 {
	return s.Base.MessageDelay(from, to, now, size)
}

// QueryDelay implements sim.DelayPolicy.
func (s *SlowQueries) QueryDelay(p sim.PeerID, now float64) float64 {
	return s.Base.QueryDelay(p, now) * s.Factor
}

// StartDelay implements sim.DelayPolicy.
func (s *SlowQueries) StartDelay(p sim.PeerID) float64 { return s.Base.StartDelay(p) }
