package adversary

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/sim"
)

// The strategy layer turns the hand-written Byzantine behaviors into a
// searchable space: a Strategy is a seeded program of per-message
// mutation ops, and a strategist peer runs the HONEST protocol internally
// while rewriting its outgoing traffic op by op. Well-formedness is
// preserved where it matters — ops that alter message contents go through
// the message's own Forge method, so forged messages parse and vote like
// honest ones but carry wrong values. This is strictly more general than
// the fixed attacks in the protocol packages (a Liar is the program
// [lie], an Equivocator is [equivocate]) and is what internal/dst's
// strategy search enumerates.

// Forgeable is implemented by protocol messages that support adversarial
// content mutation. Forge must return a WELL-FORMED deep copy carrying
// wrong values (receivers must not be able to reject it as malformed),
// and must draw all of its coins from r so executions stay reproducible.
type Forgeable interface {
	sim.Message
	Forge(r *rand.Rand) sim.Message
}

// Op is one per-message mutation in a strategy program.
type Op string

// The op alphabet. Ops that need Forgeable messages degrade to OpWithhold
// when the payload does not support forging — silence is always available
// to a Byzantine peer.
const (
	// OpDeliver sends the honest message unchanged (useful padding: it
	// controls the fraction of honest-looking traffic in a program).
	OpDeliver Op = "deliver"
	// OpWithhold drops the message entirely.
	OpWithhold Op = "withhold"
	// OpLie replaces the message with a forged variant, identical for
	// every receiver of a broadcast.
	OpLie Op = "lie"
	// OpEquivocate sends the honest message to some receivers and a
	// forged one to others, chosen per receiver by coin flip.
	OpEquivocate Op = "equivocate"
	// OpReplayStale re-sends the oldest previously sent message instead
	// of the current one (stale but authentic traffic).
	OpReplayStale Op = "replay-stale"
	// OpFlood sends the honest message and then a burst of junk, bounded
	// by the strategist's flood budget so executions stay finite.
	OpFlood Op = "flood"
)

// Ops lists the full op alphabet in canonical order.
func Ops() []Op {
	return []Op{OpDeliver, OpWithhold, OpLie, OpEquivocate, OpReplayStale, OpFlood}
}

// ValidOp reports whether op is in the alphabet.
func ValidOp(op Op) bool {
	for _, o := range Ops() {
		if o == op {
			return true
		}
	}
	return false
}

// Strategy is a seeded program of mutation ops. The k-th outgoing
// protocol message (counting per peer, broadcasts count once) is
// processed by Program[k mod len(Program)]; all mutation coins come from
// a rand stream derived from Seed and the peer id, so a (Strategy,
// schedule) pair reproduces an execution exactly.
type Strategy struct {
	Seed    int64
	Program []Op
}

// String renders the program compactly, e.g. "s42[lie,withhold]".
func (s Strategy) String() string {
	ops := make([]string, len(s.Program))
	for i, op := range s.Program {
		ops[i] = string(op)
	}
	return fmt.Sprintf("s%d[%s]", s.Seed, strings.Join(ops, ","))
}

// Validate reports malformed programs.
func (s Strategy) Validate() error {
	if len(s.Program) == 0 {
		return fmt.Errorf("adversary: empty strategy program")
	}
	for _, op := range s.Program {
		if !ValidOp(op) {
			return fmt.Errorf("adversary: unknown op %q", op)
		}
	}
	return nil
}

// RandomStrategy draws a program of 1–4 ops (uniform over the alphabet)
// for strategy search. Degenerate all-deliver programs are re-drawn: they
// are honest behavior and waste search budget.
func RandomStrategy(r *rand.Rand, seed int64) Strategy {
	ops := Ops()
	for {
		n := 1 + r.Intn(4)
		prog := make([]Op, n)
		aggressive := false
		for i := range prog {
			prog[i] = ops[r.Intn(len(ops))]
			if prog[i] != OpDeliver {
				aggressive = true
			}
		}
		if aggressive {
			return Strategy{Seed: seed, Program: prog}
		}
	}
}

// floodBudget bounds the total junk broadcasts one strategist may emit.
const floodBudget = 16

// NewStrategist returns a sim.FaultSpec.NewByzantine factory: each faulty
// peer runs honest(id) internally, with every outgoing Send/Broadcast
// rewritten by the strategy program. Queries, and hence the internal
// protocol's source view, stay honest — the adversary lies on the wire,
// not to itself.
func (s Strategy) NewStrategist(honest func(sim.PeerID) sim.Peer) func(sim.PeerID, *sim.Knowledge) sim.Peer {
	return func(id sim.PeerID, k *sim.Knowledge) sim.Peer {
		return &strategist{
			inner: honest(id),
			strat: s,
			rng:   rand.New(rand.NewSource(s.Seed ^ (int64(id)+1)*0x9e3779b97f4a7c)),
			flood: floodBudget,
		}
	}
}

// strategist is the wrapping Byzantine peer.
type strategist struct {
	inner sim.Peer
	strat Strategy
	rng   *rand.Rand
	sends int // protocol messages processed (indexes the program)
	flood int
	// stale holds previously sent honest messages for OpReplayStale.
	stale []sim.Message
}

var _ sim.Peer = (*strategist)(nil)

// Init implements sim.Peer.
func (a *strategist) Init(ctx sim.Context) {
	a.inner.Init(&strategistCtx{Context: ctx, a: a})
}

// OnMessage implements sim.Peer.
func (a *strategist) OnMessage(from sim.PeerID, m sim.Message) { a.inner.OnMessage(from, m) }

// OnQueryReply implements sim.Peer.
func (a *strategist) OnQueryReply(r sim.QueryReply) { a.inner.OnQueryReply(r) }

// strategistCtx intercepts outgoing traffic; everything else passes
// through to the runtime's context.
type strategistCtx struct {
	sim.Context
	a *strategist
}

// nextOp advances the program counter.
func (a *strategist) nextOp() Op {
	op := a.strat.Program[a.sends%len(a.strat.Program)]
	a.sends++
	return op
}

// forge returns a forged variant of m, or nil when m cannot be forged.
func (a *strategist) forge(m sim.Message) sim.Message {
	if f, ok := m.(Forgeable); ok {
		return f.Forge(a.rng)
	}
	return nil
}

// apply runs one op for message m toward the receivers in `to`.
func (c *strategistCtx) apply(m sim.Message, to []sim.PeerID) {
	a := c.a
	switch op := a.nextOp(); op {
	case OpWithhold:
		return
	case OpLie:
		forged := a.forge(m)
		if forged == nil {
			return // unforgeable: withhold
		}
		for _, id := range to {
			c.Context.Send(id, forged)
		}
		return
	case OpEquivocate:
		forged := a.forge(m)
		if forged == nil {
			return
		}
		for _, id := range to {
			if a.rng.Intn(2) == 0 {
				c.Context.Send(id, m)
			} else {
				c.Context.Send(id, forged)
			}
		}
		return
	case OpReplayStale:
		if len(a.stale) > 0 {
			old := a.stale[0]
			for _, id := range to {
				c.Context.Send(id, old)
			}
		}
		return
	case OpFlood:
		for _, id := range to {
			c.Context.Send(id, m)
		}
		for i := 0; i < 3 && a.flood > 0; i++ {
			a.flood--
			c.Context.Broadcast(&Junk{Bits: 1 + a.rng.Intn(256)})
		}
		return
	default: // OpDeliver
		for _, id := range to {
			c.Context.Send(id, m)
		}
		return
	}
}

// record keeps a copy of an honest outgoing message for OpReplayStale,
// bounded so long executions don't accumulate unbounded state.
func (a *strategist) record(m sim.Message) {
	if len(a.stale) < 8 {
		a.stale = append(a.stale, m)
	}
}

// Send implements sim.Context.
func (c *strategistCtx) Send(to sim.PeerID, m sim.Message) {
	c.a.record(m)
	c.apply(m, []sim.PeerID{to})
}

// Broadcast implements sim.Context. The whole broadcast is ONE program
// step (so equivocate can split receivers), matching how the hand-written
// attacks structure their sends.
func (c *strategistCtx) Broadcast(m sim.Message) {
	c.a.record(m)
	n := c.Context.N()
	self := c.Context.ID()
	to := make([]sim.PeerID, 0, n-1)
	for i := 0; i < n; i++ {
		if sim.PeerID(i) != self {
			to = append(to, sim.PeerID(i))
		}
	}
	c.apply(m, to)
}

// ParseProgram parses a comma-separated op list ("lie,withhold").
func ParseProgram(s string) ([]Op, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("adversary: empty program")
	}
	parts := strings.Split(s, ",")
	prog := make([]Op, 0, len(parts))
	for _, p := range parts {
		op := Op(strings.TrimSpace(p))
		if !ValidOp(op) {
			known := make([]string, 0, len(Ops()))
			for _, o := range Ops() {
				known = append(known, string(o))
			}
			sort.Strings(known)
			return nil, fmt.Errorf("adversary: unknown op %q (known: %s)", op, strings.Join(known, ", "))
		}
		prog = append(prog, op)
	}
	return prog, nil
}
