package adversary_test

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/des"
	"repro/internal/protocols/committee"
	"repro/internal/protocols/segproto"
	"repro/internal/protocols/twocycle"
	"repro/internal/sim"
)

func TestWindowActive(t *testing.T) {
	w := adversary.Window{Start: 1, End: 3}
	for _, tc := range []struct {
		now  float64
		want bool
	}{{0.5, false}, {1, true}, {2.9, true}, {3, false}, {10, false}} {
		if got := w.Active(tc.now); got != tc.want {
			t.Errorf("Active(%v) = %v", tc.now, got)
		}
	}
	var zero adversary.Window
	if zero.Active(0) {
		t.Error("zero window active")
	}
}

// TestRotatingCommittee corrupts t peers during the first time unit only:
// their reports are forged while corrupted, honest afterwards. The
// committee protocol must stay correct for the never-faulty peers, and
// the recovered peers must terminate with the right output too.
func TestRotatingCommittee(t *testing.T) {
	const n, tf, L = 12, 5, 240
	faulty := adversary.SpreadFaulty(n, tf)
	windows := make(map[sim.PeerID]adversary.Window, tf)
	for i, p := range faulty {
		// Staggered windows: at most 2 concurrently corrupted.
		start := float64(i) * 0.4
		windows[p] = adversary.Window{Start: start, End: start + 0.8}
	}
	spec := &sim.Spec{
		Config:  sim.Config{N: n, T: tf, L: L, MsgBits: 64, Seed: 5},
		NewPeer: committee.New,
		Delays:  adversary.NewRandomUnit(5),
		Faults: sim.FaultSpec{
			Model:  sim.FaultByzantine,
			Faulty: faulty,
			NewByzantine: adversary.NewRotating(
				committee.New, committee.NewLiar, windows),
		},
	}
	res, err := des.New().Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("never-faulty peers failed: %v", res)
	}
	// Recovered peers resume honest execution and should also converge.
	input := spec.Config.ResolveInput()
	for _, p := range faulty {
		ps := res.PerPeer[p]
		if !ps.Terminated {
			t.Errorf("recovered peer %d did not terminate", p)
			continue
		}
		if ps.Output == nil || !ps.Output.Equal(input) {
			t.Errorf("recovered peer %d output wrong", p)
		}
	}
}

// TestRotatingTwoCycle runs the randomized protocol under rotating
// colluders whose union exceeds what a static adversary could corrupt
// concurrently.
func TestRotatingTwoCycle(t *testing.T) {
	const n, L = 128, 1 << 12
	tf := n / 4
	faulty := adversary.SpreadFaulty(n, tf)
	windows := make(map[sim.PeerID]adversary.Window, tf)
	for i, p := range faulty {
		if i%2 == 0 {
			windows[p] = adversary.Window{Start: 0, End: 1.5}
		} else {
			windows[p] = adversary.Window{Start: 1.5, End: 4}
		}
	}
	spec := &sim.Spec{
		Config:  sim.Config{N: n, T: tf, L: L, MsgBits: 64, Seed: 6},
		NewPeer: twocycle.New,
		Delays:  adversary.NewRandomUnit(6),
		Faults: sim.FaultSpec{
			Model:  sim.FaultByzantine,
			Faulty: faulty,
			NewByzantine: adversary.NewRotating(
				twocycle.New, segproto.NewColludingLiar, windows),
		},
	}
	res, err := des.New().Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("twocycle under rotating colluders: %v", res)
	}
}

// TestRotatingNeverCorrupted: a zero window means fully honest behavior;
// the peer must act exactly like an honest one.
func TestRotatingNeverCorrupted(t *testing.T) {
	const n, L = 8, 128
	for _, seed := range []int64{1, 2} {
		run := func(rotating bool) string {
			spec := &sim.Spec{
				Config:  sim.Config{N: n, T: 2, L: L, MsgBits: 64, Seed: seed},
				NewPeer: committee.New,
				Delays:  adversary.NewRandomUnit(seed),
			}
			if rotating {
				spec.Faults = sim.FaultSpec{
					Model:  sim.FaultByzantine,
					Faulty: []sim.PeerID{1, 3},
					NewByzantine: adversary.NewRotating(
						committee.New, committee.NewLiar, nil),
				}
			}
			res, err := des.New().Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("Q=%d time=%.4f events=%d", res.Q, res.Time, res.Events)
		}
		plain, rotated := run(false), run(true)
		if plain != rotated {
			t.Errorf("seed %d: zero-window rotating changed the execution: %s vs %s",
				seed, plain, rotated)
		}
	}
}
