package adversary

import (
	"math/rand"
	"testing"
)

func TestParseProgram(t *testing.T) {
	prog, err := ParseProgram("lie, withhold,equivocate")
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{OpLie, OpWithhold, OpEquivocate}
	if len(prog) != len(want) {
		t.Fatalf("got %v", prog)
	}
	for i := range want {
		if prog[i] != want[i] {
			t.Fatalf("got %v, want %v", prog, want)
		}
	}
	if _, err := ParseProgram("lie,bogus"); err == nil {
		t.Fatal("accepted unknown op")
	}
	if _, err := ParseProgram(""); err == nil {
		t.Fatal("accepted empty program")
	}
}

func TestStrategyValidate(t *testing.T) {
	if err := (Strategy{Seed: 1, Program: []Op{OpLie}}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Strategy{Seed: 1}).Validate(); err == nil {
		t.Fatal("accepted empty program")
	}
	if err := (Strategy{Seed: 1, Program: []Op{"nope"}}).Validate(); err == nil {
		t.Fatal("accepted unknown op")
	}
}

// TestRandomStrategyNeverHonest: the search never wastes budget on
// all-deliver (i.e. honest) programs, and draws are deterministic per
// rng stream.
func TestRandomStrategyNeverHonest(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		s := RandomStrategy(r, int64(i))
		if err := s.Validate(); err != nil {
			t.Fatalf("draw %d invalid: %v", i, err)
		}
		honest := true
		for _, op := range s.Program {
			if op != OpDeliver {
				honest = false
			}
		}
		if honest {
			t.Fatalf("draw %d is all-deliver: %v", i, s.Program)
		}
		if len(s.Program) < 1 || len(s.Program) > 4 {
			t.Fatalf("draw %d has %d ops", i, len(s.Program))
		}
	}
	a := RandomStrategy(rand.New(rand.NewSource(7)), 42)
	b := RandomStrategy(rand.New(rand.NewSource(7)), 42)
	if a.String() != b.String() {
		t.Fatalf("same stream drew %s and %s", a, b)
	}
}
