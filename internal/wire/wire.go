// Package wire provides a compact binary encoding for every protocol
// message in the library. The simulation runtimes pass messages as Go
// values and account sizes semantically (sim.Message.SizeBits); this
// package is what turns them into actual bytes — used by the TCP runtime
// (package netrt) and by tests that check the semantic size accounting is
// honest (encoded length tracks SizeBits within a small framing overhead).
//
// Frame format: one type byte, then a type-specific payload built from
// unsigned varints (encoding/binary), length-prefixed bitarray payloads,
// and index sets encoded as coalesced (start, length) range pairs —
// matching the accounting model of package intset.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/bitarray"
	"repro/internal/intset"
	"repro/internal/protocols/committee"
	"repro/internal/protocols/crash1"
	"repro/internal/protocols/crashk"
	"repro/internal/protocols/segproto"
	"repro/internal/sim"
)

// Message type tags. Start at 1; 0 is reserved as invalid.
const (
	tagCrashkReq1 byte = iota + 1
	tagCrashkResp1
	tagCrashkReq2
	tagCrashkResp2
	tagCrashkFull
	tagCrash1Push
	tagCrash1Who
	tagCrash1Reply
	tagCommitteeReport
	tagSegValue
	tagJunk
)

// ErrUnknownType reports an unregistered message type.
var ErrUnknownType = errors.New("wire: unknown message type")

// ErrTruncated reports malformed or short input.
var ErrTruncated = errors.New("wire: truncated payload")

// Marshal encodes any registered protocol message.
func Marshal(m sim.Message) ([]byte, error) { return MarshalAppend(nil, m) }

// MarshalAppend encodes m appended to dst and returns the extended slice.
// It is the allocation-free encode path: with sufficient capacity in dst
// no allocation occurs (see the package alloc-budget tests), which lets
// the TCP runtime reuse one scratch buffer per connection.
func MarshalAppend(dst []byte, m sim.Message) ([]byte, error) {
	w := writer{buf: dst}
	switch v := m.(type) {
	case *crashk.Req1:
		w.byte(tagCrashkReq1)
		w.uvarint(uint64(v.Phase))
		w.set(v.Indices)
	case *crashk.Resp1:
		w.byte(tagCrashkResp1)
		w.uvarint(uint64(v.Phase))
		w.set(v.Indices)
		w.bits(v.Values)
	case *crashk.Req2:
		w.byte(tagCrashkReq2)
		w.uvarint(uint64(v.Phase))
		w.uvarint(uint64(len(v.Items)))
		for _, it := range v.Items {
			w.uvarint(uint64(it.Q))
			w.set(it.Indices)
		}
	case *crashk.Resp2:
		w.byte(tagCrashkResp2)
		w.uvarint(uint64(v.Phase))
		w.uvarint(uint64(len(v.Items)))
		for _, it := range v.Items {
			w.uvarint(uint64(it.Q))
			if it.MeNeither {
				w.byte(1)
				continue
			}
			w.byte(0)
			w.set(it.Indices)
			w.bits(it.Values)
		}
	case *crashk.Full:
		w.byte(tagCrashkFull)
		w.bits(v.Values)
	case *crash1.Push:
		w.byte(tagCrash1Push)
		w.uvarint(uint64(v.Phase))
		w.set(v.Indices)
		w.bits(v.Values)
	case *crash1.WhoIsMissing:
		w.byte(tagCrash1Who)
		w.uvarint(uint64(v.Phase))
		w.uvarint(uint64(v.Missing))
	case *crash1.MissingReply:
		w.byte(tagCrash1Reply)
		w.uvarint(uint64(v.Phase))
		w.uvarint(uint64(v.About))
		if v.MeNeither {
			w.byte(1)
		} else {
			w.byte(0)
			w.set(v.Indices)
			w.bits(v.Values)
		}
	case *committee.Report:
		w.byte(tagCommitteeReport)
		w.uvarint(uint64(len(v.Indices)))
		prev := 0
		for _, idx := range v.Indices {
			w.uvarint(uint64(idx - prev)) // delta encoding
			prev = idx
		}
		w.bits(v.Bits)
	case *segproto.SegValue:
		w.byte(tagSegValue)
		w.uvarint(uint64(v.Cycle))
		w.uvarint(uint64(v.Seg))
		w.bits(v.Values)
	case *adversary.Junk:
		w.byte(tagJunk)
		w.uvarint(uint64(v.Bits))
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownType, m)
	}
	return w.buf, nil
}

// Unmarshal decodes a frame produced by Marshal. L is the execution's
// input length, needed to restore size-accounting fields.
func Unmarshal(data []byte, L int) (sim.Message, error) {
	if len(data) == 0 {
		return nil, ErrTruncated
	}
	r := &reader{buf: data[1:]}
	idxBits := segproto.IndexBits(L)
	var m sim.Message
	switch data[0] {
	case tagCrashkReq1:
		v := &crashk.Req1{IdxBits: idxBits}
		v.Phase = int(r.uvarint())
		v.Indices = r.set()
		m = v
	case tagCrashkResp1:
		v := &crashk.Resp1{IdxBits: idxBits}
		v.Phase = int(r.uvarint())
		v.Indices = r.set()
		v.Values = r.bits()
		m = v
	case tagCrashkReq2:
		v := &crashk.Req2{IdxBits: idxBits}
		v.Phase = int(r.uvarint())
		n := int(r.uvarint())
		if n > maxItems {
			return nil, ErrTruncated
		}
		for i := 0; i < n && r.err == nil; i++ {
			it := crashk.Req2Item{Q: sim.PeerID(r.uvarint())}
			it.Indices = r.set()
			v.Items = append(v.Items, it)
		}
		m = v
	case tagCrashkResp2:
		v := &crashk.Resp2{IdxBits: idxBits}
		v.Phase = int(r.uvarint())
		n := int(r.uvarint())
		if n > maxItems {
			return nil, ErrTruncated
		}
		for i := 0; i < n && r.err == nil; i++ {
			it := crashk.Resp2Item{Q: sim.PeerID(r.uvarint())}
			if r.byte() == 1 {
				it.MeNeither = true
			} else {
				it.Indices = r.set()
				it.Values = r.bits()
			}
			v.Items = append(v.Items, it)
		}
		m = v
	case tagCrashkFull:
		m = &crashk.Full{Values: r.bits()}
	case tagCrash1Push:
		v := &crash1.Push{IdxBits: idxBits}
		v.Phase = int(r.uvarint())
		v.Indices = r.set()
		v.Values = r.bits()
		m = v
	case tagCrash1Who:
		v := &crash1.WhoIsMissing{}
		v.Phase = int(r.uvarint())
		v.Missing = sim.PeerID(r.uvarint())
		m = v
	case tagCrash1Reply:
		v := &crash1.MissingReply{IdxBits: idxBits}
		v.Phase = int(r.uvarint())
		v.About = sim.PeerID(r.uvarint())
		if r.byte() == 1 {
			v.MeNeither = true
		} else {
			v.Indices = r.set()
			v.Values = r.bits()
		}
		m = v
	case tagCommitteeReport:
		v := &committee.Report{IdxBits: idxBits}
		n := int(r.uvarint())
		if n > maxItems {
			return nil, ErrTruncated
		}
		prev := uint64(0)
		for i := 0; i < n && r.err == nil; i++ {
			prev += r.uvarint()
			v.Indices = append(v.Indices, int(prev))
		}
		v.Bits = r.bits()
		m = v
	case tagSegValue:
		v := &segproto.SegValue{IdxBits: idxBits}
		v.Cycle = int(r.uvarint())
		v.Seg = int(r.uvarint())
		v.Values = r.bits()
		m = v
	case tagJunk:
		m = &adversary.Junk{Bits: int(r.uvarint())}
	default:
		return nil, fmt.Errorf("%w: tag %d", ErrUnknownType, data[0])
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// maxItems bounds decoded collection sizes against hostile frames.
const maxItems = 1 << 20

type writer struct{ buf []byte }

func (w *writer) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) bytesField(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *writer) bits(a *bitarray.Array) {
	if a == nil {
		w.bytesField(nil)
		return
	}
	// Append the serialization directly instead of materializing a.Bytes()
	// into a temporary.
	w.uvarint(uint64(a.EncodedLen()))
	w.buf = a.AppendTo(w.buf)
}

func (w *writer) set(s intset.Set) {
	w.uvarint(uint64(s.RangeCount()))
	// Encode ranges as (gap-from-previous-end, length) pairs.
	prevEnd := 0
	s.ForEachRange(func(lo, hi int) {
		w.uvarint(uint64(lo - prevEnd))
		w.uvarint(uint64(hi - lo))
		prevEnd = hi
	})
}

type reader struct {
	buf []byte
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) byte() byte {
	if r.err != nil || len(r.buf) == 0 {
		r.fail()
		return 0
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) bytesField() []byte {
	n := int(r.uvarint())
	if r.err != nil || n < 0 || n > len(r.buf) {
		r.fail()
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *reader) bits() *bitarray.Array {
	raw := r.bytesField()
	if r.err != nil {
		return nil
	}
	if len(raw) == 0 {
		return bitarray.New(0)
	}
	a, err := bitarray.FromBytes(raw)
	if err != nil {
		r.fail()
		return nil
	}
	return a
}

// maxIndex bounds decoded index values; hostile varints past it would
// otherwise overflow int arithmetic into negative ranges.
const maxIndex = 1 << 40

func (r *reader) set() intset.Set {
	n64 := r.uvarint()
	if r.err != nil || n64 > maxItems {
		r.fail()
		return intset.Set{}
	}
	n := int(n64)
	var b intset.Builder
	prevEnd := 0
	for i := 0; i < n && r.err == nil; i++ {
		gap := r.uvarint()
		length := r.uvarint()
		if r.err != nil || gap > maxIndex || length == 0 || length > maxIndex {
			r.fail()
			break
		}
		lo := prevEnd + int(gap)
		hi := lo + int(length)
		if lo < prevEnd || hi < lo || hi > maxIndex {
			r.fail()
			break
		}
		b.AddRange(lo, hi)
		prevEnd = hi
	}
	if r.err != nil {
		return intset.Set{}
	}
	return b.Set()
}
