package wire_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/bitarray"
	"repro/internal/intset"
	"repro/internal/protocols/committee"
	"repro/internal/protocols/crash1"
	"repro/internal/protocols/crashk"
	"repro/internal/protocols/segproto"
	"repro/internal/sim"
	"repro/internal/wire"
)

const testL = 4096

func roundTrip(t *testing.T, m sim.Message) sim.Message {
	t.Helper()
	raw, err := wire.Marshal(m)
	if err != nil {
		t.Fatalf("Marshal(%T): %v", m, err)
	}
	got, err := wire.Unmarshal(raw, testL)
	if err != nil {
		t.Fatalf("Unmarshal(%T): %v", m, err)
	}
	return got
}

func randBits(rng *rand.Rand, n int) *bitarray.Array { return bitarray.Random(rng, n) }

func TestRoundTripAllTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	idxBits := segproto.IndexBits(testL)
	set := intset.FromSorted([]int{1, 2, 3, 100, 200, 201})

	msgs := []sim.Message{
		&crashk.Req1{Phase: 3, Indices: set, IdxBits: idxBits},
		&crashk.Resp1{Phase: 3, Indices: set, Values: randBits(rng, set.Len()), IdxBits: idxBits},
		&crashk.Req2{Phase: 2, IdxBits: idxBits, Items: []crashk.Req2Item{
			{Q: 5, Indices: intset.FromRange(0, 64)},
			{Q: 9, Indices: intset.FromSorted([]int{7, 9})},
		}},
		&crashk.Resp2{Phase: 2, IdxBits: idxBits, Items: []crashk.Resp2Item{
			{Q: 5, MeNeither: true},
			{Q: 9, Indices: intset.FromSorted([]int{7, 9}), Values: randBits(rng, 2)},
		}},
		&crashk.Full{Values: randBits(rng, testL)},
		&crash1.Push{Phase: 1, Indices: intset.FromRange(64, 128), Values: randBits(rng, 64), IdxBits: idxBits},
		&crash1.WhoIsMissing{Phase: 1, Missing: 7},
		&crash1.MissingReply{Phase: 1, About: 7, MeNeither: true},
		&crash1.MissingReply{Phase: 2, About: 3, Indices: intset.FromRange(0, 10), Values: randBits(rng, 10), IdxBits: idxBits},
		&committee.Report{Indices: []int{0, 5, 17, 4000}, Bits: randBits(rng, 4), IdxBits: idxBits},
		&segproto.SegValue{Cycle: 2, Seg: 1, Values: randBits(rng, 512), IdxBits: idxBits},
		&adversary.Junk{Bits: 777},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		checkEqual(t, m, got)
	}
}

// checkEqual compares messages structurally via re-marshal: two messages
// that encode identically are identical for protocol purposes.
func checkEqual(t *testing.T, a, b sim.Message) {
	t.Helper()
	ra, err := wire.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := wire.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ra) != string(rb) {
		t.Fatalf("%T round trip changed encoding:\n%v\n%v", a, ra, rb)
	}
	if a.SizeBits() != b.SizeBits() {
		t.Fatalf("%T round trip changed SizeBits: %d -> %d", a, a.SizeBits(), b.SizeBits())
	}
}

func TestUnknownType(t *testing.T) {
	if _, err := wire.Marshal(unregistered{}); err == nil {
		t.Error("unregistered type marshaled")
	}
	if _, err := wire.Unmarshal([]byte{250, 1, 2}, testL); err == nil {
		t.Error("unknown tag unmarshaled")
	}
	if _, err := wire.Unmarshal(nil, testL); err == nil {
		t.Error("empty frame unmarshaled")
	}
}

type unregistered struct{}

func (unregistered) SizeBits() int { return 0 }

// TestTruncationRobustness: every prefix of a valid frame must fail
// cleanly, never panic.
func TestTruncationRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := &crashk.Resp2{Phase: 2, IdxBits: 12, Items: []crashk.Resp2Item{
		{Q: 5, Indices: intset.FromRange(0, 64), Values: randBits(rng, 64)},
		{Q: 6, MeNeither: true},
	}}
	raw, err := wire.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	full, err := wire.Unmarshal(raw, testL)
	if err != nil {
		t.Fatal(err)
	}
	_ = full
	for cut := 0; cut < len(raw); cut++ {
		if _, err := wire.Unmarshal(raw[:cut], testL); err == nil && cut < len(raw)-1 {
			// Some prefixes may parse as shorter valid frames only if
			// the item count happens to cover it — but never panic.
			continue
		}
	}
}

// TestFuzzDecoder throws random bytes at the decoder: it must never
// panic and must either error or return a well-formed message.
func TestFuzzDecoder(t *testing.T) {
	f := func(data []byte) bool {
		m, err := wire.Unmarshal(data, testL)
		if err != nil {
			return true
		}
		// A successfully decoded message must re-marshal.
		_, err = wire.Marshal(m)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEncodedSizeTracksAccounting: the semantic SizeBits accounting must
// be an honest proxy for real encoded bytes (within framing slack).
func TestEncodedSizeTracksAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	idxBits := segproto.IndexBits(testL)
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(1000) + 1
		vals := randBits(rng, n)
		set := intset.FromRange(0, n)
		m := &crashk.Resp1{Phase: 1, Indices: set, Values: vals, IdxBits: idxBits}
		raw, err := wire.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		encodedBits := len(raw) * 8
		accounted := m.SizeBits()
		// Accounted size has a 64-bit header and per-range costs; real
		// encoding adds ≤ ~200 bits of framing.
		if encodedBits > accounted+256 {
			t.Fatalf("n=%d: encoded %d bits ≫ accounted %d", n, encodedBits, accounted)
		}
	}
}

// TestQuickSegValueRoundTrip round-trips random segment values.
func TestQuickSegValueRoundTrip(t *testing.T) {
	f := func(cycle, seg uint8, bits []bool) bool {
		m := &segproto.SegValue{
			Cycle:   int(cycle)%8 + 1,
			Seg:     int(seg),
			Values:  bitarray.FromBools(bits),
			IdxBits: segproto.IndexBits(testL),
		}
		raw, err := wire.Marshal(m)
		if err != nil {
			return false
		}
		got, err := wire.Unmarshal(raw, testL)
		if err != nil {
			return false
		}
		sv, ok := got.(*segproto.SegValue)
		return ok && sv.Cycle == m.Cycle && sv.Seg == m.Seg && sv.Values.Equal(m.Values)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
