package wire_test

import (
	"testing"

	"repro/internal/bitarray"
	"repro/internal/intset"
	"repro/internal/protocols/crashk"
	"repro/internal/protocols/segproto"
	"repro/internal/wire"
)

// FuzzUnmarshal hammers the decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-marshal cleanly.
func FuzzUnmarshal(f *testing.F) {
	// Seed corpus: valid frames of several types plus junk.
	seedMsgs := []interface{ SizeBits() int }{
		&crashk.Req1{Phase: 1, Indices: intset.FromRange(0, 64), IdxBits: 12},
		&crashk.Full{Values: bitarray.New(128)},
		&segproto.SegValue{Cycle: 1, Seg: 0, Values: bitarray.New(32), IdxBits: 12},
	}
	for _, m := range seedMsgs {
		raw, err := wire.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := wire.Unmarshal(data, 4096)
		if err != nil {
			return
		}
		if _, err := wire.Marshal(m); err != nil {
			t.Fatalf("decoded message failed to re-marshal: %v", err)
		}
	})
}

// FuzzRoundTrip drives structured inputs through encode/decode/encode:
// the second encoding must equal the first (canonical form).
func FuzzRoundTrip(f *testing.F) {
	f.Add(1, 0, []byte{1, 2, 3})
	f.Add(3, 7, []byte{})
	f.Fuzz(func(t *testing.T, cycle, seg int, bits []byte) {
		if cycle < 1 || cycle > 1<<20 || seg < 0 || seg > 1<<20 || len(bits) > 1<<12 {
			return
		}
		vals := bitarray.New(len(bits))
		for i, b := range bits {
			vals.Set(i, b&1 == 1)
		}
		m := &segproto.SegValue{Cycle: cycle, Seg: seg, Values: vals, IdxBits: 12}
		raw1, err := wire.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wire.Unmarshal(raw1, 4096)
		if err != nil {
			t.Fatal(err)
		}
		raw2, err := wire.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw1) != string(raw2) {
			t.Fatal("non-canonical round trip")
		}
	})
}
