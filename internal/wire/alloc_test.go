package wire

import (
	"math/rand"
	"testing"

	"repro/internal/bitarray"
	"repro/internal/intset"
	"repro/internal/protocols/crash1"
)

// TestMarshalAppendAllocFree pins the encode path's allocation contract:
// appending into a buffer with sufficient capacity must not allocate at
// all. The TCP runtime relies on this to reuse one scratch buffer per
// connection, and bitarray.AppendTo exists precisely to keep this path
// free of intermediate []byte materialization.
func TestMarshalAppendAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	msg := &crash1.Push{
		Phase:   1,
		Indices: intset.FromRange(100, 1124),
		Values:  bitarray.Random(rng, 1024),
		IdxBits: 11,
	}
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := MarshalAppend(buf, msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) == 0 {
			t.Fatal("empty encoding")
		}
	})
	if allocs != 0 {
		t.Fatalf("MarshalAppend into presized buffer allocated %.1f times per op, want 0", allocs)
	}
}

// TestMarshalAllocBudget bounds the convenience path: Marshal may allocate
// only for the returned buffer (append growth), not per-field.
func TestMarshalAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	msg := &crash1.Push{
		Phase:   1,
		Indices: intset.FromRange(0, 512),
		Values:  bitarray.Random(rng, 512),
		IdxBits: 10,
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := Marshal(msg); err != nil {
			t.Fatal(err)
		}
	})
	// Appending ~600 bytes from nil grows the slice a handful of times;
	// anything beyond that means a field started materializing copies.
	if allocs > 6 {
		t.Fatalf("Marshal allocated %.1f times per op, budget 6", allocs)
	}
}
