package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Timeline renders per-peer event lanes over bucketed time — a compact
// visual of an execution's shape: when each peer was active, when it
// queried, crashed, or terminated.
//
//	0 |S=q*===*=========T     |
//	1 |S=q*==*===X           |
//
// Legend: S start, q query issued, r query reply, * message delivery,
// s send burst, X crash, T terminate, = idle within an active span.
// When several event kinds land in one bucket the most significant one
// (X > T > S > q > r > * > s) is shown.
func Timeline(events []sim.ObservedEvent, width int) string {
	if len(events) == 0 {
		return "(empty trace)\n"
	}
	if width < 10 {
		width = 10
	}
	start, end := events[0].Time, events[0].Time
	peerSet := map[sim.PeerID]bool{}
	for _, ev := range events {
		if ev.Time < start {
			start = ev.Time
		}
		if ev.Time > end {
			end = ev.Time
		}
		peerSet[ev.Peer] = true
	}
	span := end - start
	if span <= 0 {
		span = 1
	}
	bucket := func(t float64) int {
		b := int((t - start) / span * float64(width-1))
		if b < 0 {
			b = 0
		}
		if b >= width {
			b = width - 1
		}
		return b
	}

	rank := map[byte]int{'s': 1, '*': 2, 'r': 3, 'q': 4, 'S': 5, 'T': 6, 'X': 7}
	glyph := map[string]byte{
		"start": 'S', "send": 's', "deliver": '*',
		"query": 'q', "qreply": 'r', "crash": 'X', "terminate": 'T',
	}

	lanes := map[sim.PeerID][]byte{}
	last := map[sim.PeerID]int{}
	for p := range peerSet {
		lanes[p] = make([]byte, width)
		for i := range lanes[p] {
			lanes[p][i] = ' '
		}
	}
	for _, ev := range events {
		g, ok := glyph[ev.Kind]
		if !ok {
			continue
		}
		b := bucket(ev.Time)
		lane := lanes[ev.Peer]
		if rank[g] > rank[lane[b]] {
			lane[b] = g
		}
		if b > last[ev.Peer] {
			last[ev.Peer] = b
		}
	}
	// Fill idle gaps within each peer's active span.
	for p, lane := range lanes {
		for i := 0; i <= last[p]; i++ {
			if lane[i] == ' ' {
				lane[i] = '='
			}
		}
	}

	ids := make([]sim.PeerID, 0, len(lanes))
	for p := range lanes {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sb strings.Builder
	fmt.Fprintf(&sb, "t = [%.2f, %.2f], one column ≈ %.2f\n", start, end, span/float64(width-1))
	for _, p := range ids {
		fmt.Fprintf(&sb, "%3d |%s|\n", p, string(lanes[p]))
	}
	sb.WriteString("legend: S start  q query  r reply  * deliver  s send  X crash  T terminate\n")
	return sb.String()
}
