package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/des"
	"repro/internal/protocols/crashk"
	"repro/internal/protocols/naive"
	"repro/internal/sim"
	"repro/internal/trace"
)

func runWithObserver(t *testing.T, obs sim.Observer, factory func(sim.PeerID) sim.Peer, n, tf, L int) *sim.Result {
	t.Helper()
	var faults sim.FaultSpec
	if tf > 0 {
		faulty := adversary.SpreadFaulty(n, tf)
		faults = sim.FaultSpec{
			Model: sim.FaultCrash, Faulty: faulty,
			Crash: adversary.NewCrashRandom(3, faulty, 40),
		}
	}
	res, err := des.New().Run(&sim.Spec{
		Config:   sim.Config{N: n, T: tf, L: L, MsgBits: 64, Seed: 3},
		NewPeer:  factory,
		Delays:   adversary.NewRandomUnit(3),
		Faults:   faults,
		Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("incorrect: %v", res)
	}
	return res
}

func TestMemoryObserverMatchesResult(t *testing.T) {
	mem := &trace.Memory{}
	res := runWithObserver(t, mem, crashk.New, 6, 2, 512)
	s := trace.Analyze(mem.Events)

	// Every honest peer's observed query bits must equal its stats.
	for _, ps := range res.PerPeer {
		obs := s.PerPeer[ps.ID]
		if obs == nil {
			t.Fatalf("peer %d missing from trace", ps.ID)
		}
		if obs.QueryBits != ps.QueryBits {
			t.Errorf("peer %d: traced query bits %d != stats %d", ps.ID, obs.QueryBits, ps.QueryBits)
		}
		if ps.Terminated != obs.Terminated {
			t.Errorf("peer %d: terminated mismatch", ps.ID)
		}
		if ps.Crashed != obs.Crashed {
			t.Errorf("peer %d: crashed mismatch", ps.ID)
		}
	}
	if s.ByKind["start"] != 6 {
		t.Errorf("starts = %d, want 6", s.ByKind["start"])
	}
	if s.ByKind["send"] == 0 || s.ByKind["deliver"] == 0 {
		t.Error("no traffic traced")
	}
	if s.ByKind["deliver"] > s.ByKind["send"] {
		t.Errorf("more deliveries (%d) than sends (%d)", s.ByKind["deliver"], s.ByKind["send"])
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf)
	runWithObserver(t, rec, naive.New, 4, 0, 128)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != rec.Events() {
		t.Fatalf("read %d events, recorded %d", len(events), rec.Events())
	}
	s := trace.Analyze(events)
	// Naive: 4 starts, 4 queries of 128 bits, 4 qreplies, 4 terminates,
	// no sends.
	if s.ByKind["query"] != 4 || s.ByKind["send"] != 0 || s.ByKind["terminate"] != 4 {
		t.Errorf("unexpected kinds: %v", s.ByKind)
	}
	for _, ps := range s.PerPeer {
		if ps.QueryBits != 128 {
			t.Errorf("query bits = %d, want 128", ps.QueryBits)
		}
	}
	var out strings.Builder
	s.Fprint(&out)
	if !strings.Contains(out.String(), "query") {
		t.Errorf("summary missing kinds: %q", out.String())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := trace.Read(strings.NewReader("{not json}\n")); err == nil {
		t.Error("garbage accepted")
	}
	events, err := trace.Read(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Errorf("empty trace: %v, %d events", err, len(events))
	}
}

func TestMessageTypeHistogram(t *testing.T) {
	mem := &trace.Memory{}
	runWithObserver(t, mem, crashk.New, 8, 4, 1024)
	s := trace.Analyze(mem.Events)
	// crashk must have sent stage-1 requests and responses plus Fulls.
	found := map[string]bool{}
	for mt := range s.ByMsgType {
		if strings.Contains(mt, "Req1") {
			found["req1"] = true
		}
		if strings.Contains(mt, "Resp1") {
			found["resp1"] = true
		}
		if strings.Contains(mt, "Full") {
			found["full"] = true
		}
	}
	for _, k := range []string{"req1", "resp1", "full"} {
		if !found[k] {
			t.Errorf("message type %s missing from histogram: %v", k, s.ByMsgType)
		}
	}
}

func TestTimeline(t *testing.T) {
	mem := &trace.Memory{}
	runWithObserver(t, mem, crashk.New, 6, 2, 512)
	out := trace.Timeline(mem.Events, 60)
	for _, want := range []string{"legend:", "T", "S"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// One lane per peer plus header and legend.
	if lines := strings.Count(out, "\n"); lines != 6+2 {
		t.Errorf("timeline has %d lines:\n%s", lines, out)
	}
	if got := trace.Timeline(nil, 40); !strings.Contains(got, "empty") {
		t.Errorf("empty timeline = %q", got)
	}
}
