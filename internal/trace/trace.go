// Package trace records and analyzes structured execution traces from
// the des runtime. A Recorder implements sim.Observer, writing one JSON
// object per event (JSONL); Analyze folds a trace back into per-kind and
// per-peer summaries and a per-message-type histogram — the raw material
// for debugging protocol behavior ("who sent what, when, to whom") that
// aggregate Result metrics deliberately discard.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Recorder streams events as JSONL to an io.Writer.
type Recorder struct {
	w   *bufio.Writer
	enc *json.Encoder
	n   int
	err error
}

var _ sim.Observer = (*Recorder)(nil)

// NewRecorder wraps w. Call Flush when the run completes.
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	return &Recorder{w: bw, enc: json.NewEncoder(bw)}
}

// OnEvent implements sim.Observer.
func (r *Recorder) OnEvent(ev sim.ObservedEvent) {
	if r.err != nil {
		return
	}
	r.n++
	r.err = r.enc.Encode(ev)
}

// Flush drains buffered output and reports the first write error.
func (r *Recorder) Flush() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Events returns the number of recorded events.
func (r *Recorder) Events() int { return r.n }

// Memory is an in-memory observer for tests and analysis without I/O.
type Memory struct {
	Events []sim.ObservedEvent
}

var _ sim.Observer = (*Memory)(nil)

// OnEvent implements sim.Observer.
func (m *Memory) OnEvent(ev sim.ObservedEvent) { m.Events = append(m.Events, ev) }

// Summary is the folded view of a trace.
type Summary struct {
	// Total counts events.
	Total int
	// ByKind counts events per kind.
	ByKind map[string]int
	// ByMsgType counts send events per message type.
	ByMsgType map[string]int
	// BitsByMsgType sums sent payload bits per message type.
	BitsByMsgType map[string]int
	// PerPeer aggregates per acting peer.
	PerPeer map[sim.PeerID]*PeerSummary
	// Span is the [first, last] event time.
	SpanStart, SpanEnd float64
}

// PeerSummary aggregates one peer's activity.
type PeerSummary struct {
	Sends, Delivers, Queries int
	QueryBits                int
	Crashed                  bool
	Terminated               bool
	TerminatedAt             float64
}

// Analyze folds a sequence of events.
func Analyze(events []sim.ObservedEvent) *Summary {
	s := &Summary{
		ByKind:        make(map[string]int),
		ByMsgType:     make(map[string]int),
		BitsByMsgType: make(map[string]int),
		PerPeer:       make(map[sim.PeerID]*PeerSummary),
	}
	for i, ev := range events {
		s.Total++
		s.ByKind[ev.Kind]++
		if i == 0 || ev.Time < s.SpanStart {
			s.SpanStart = ev.Time
		}
		if ev.Time > s.SpanEnd {
			s.SpanEnd = ev.Time
		}
		ps := s.PerPeer[ev.Peer]
		if ps == nil {
			ps = &PeerSummary{}
			s.PerPeer[ev.Peer] = ps
		}
		switch ev.Kind {
		case "send":
			ps.Sends++
			s.ByMsgType[ev.MsgType]++
			s.BitsByMsgType[ev.MsgType] += ev.Bits
		case "deliver":
			ps.Delivers++
		case "query":
			ps.Queries++
			ps.QueryBits += ev.Bits
		case "crash":
			ps.Crashed = true
		case "terminate":
			ps.Terminated = true
			ps.TerminatedAt = ev.Time
		}
	}
	return s
}

// Read parses a JSONL trace.
func Read(r io.Reader) ([]sim.ObservedEvent, error) {
	var out []sim.ObservedEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev sim.ObservedEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return out, nil
}

// Fprint renders a human-readable summary.
func (s *Summary) Fprint(w io.Writer) {
	fmt.Fprintf(w, "events %d over t=[%.2f, %.2f]\n", s.Total, s.SpanStart, s.SpanEnd)
	for _, kind := range sortedKeys(s.ByKind) {
		fmt.Fprintf(w, "  %-10s %d\n", kind, s.ByKind[kind])
	}
	if len(s.ByMsgType) > 0 {
		fmt.Fprintln(w, "message types:")
		for _, mt := range sortedKeys(s.ByMsgType) {
			short := mt
			if i := strings.LastIndex(mt, "."); i >= 0 {
				short = mt[i+1:]
			}
			fmt.Fprintf(w, "  %-16s sends=%-8d bits=%d\n", short, s.ByMsgType[mt], s.BitsByMsgType[mt])
		}
	}
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
