package oracle_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/adversary"
	"repro/internal/bitarray"
	"repro/internal/oracle"
	"repro/internal/protocols/committee"
	"repro/internal/protocols/crashk"
	"repro/internal/sim"
)

func baseConfig() *oracle.Config {
	return &oracle.Config{
		Nodes: 10, NodeFaults: 3, SourceFaults: 2, Cells: 16, Seed: 42,
	}
}

func TestGenerateFeeds(t *testing.T) {
	cfg := baseConfig()
	feeds, err := oracle.GenerateFeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(feeds.Values) != cfg.NumSources() {
		t.Fatalf("got %d sources, want %d", len(feeds.Values), cfg.NumSources())
	}
	if len(feeds.ByzantineSources) != cfg.SourceFaults {
		t.Fatalf("got %d byzantine sources", len(feeds.ByzantineSources))
	}
	for j := 0; j < cfg.Cells; j++ {
		if feeds.HonestMin[j] > feeds.HonestMax[j] {
			t.Fatalf("cell %d: empty honest range", j)
		}
		// Honest sources must be inside the range.
		for s := cfg.SourceFaults; s < cfg.NumSources(); s++ {
			v := feeds.Values[s][j]
			if v < feeds.HonestMin[j] || v > feeds.HonestMax[j] {
				t.Fatalf("honest source %d outside honest range", s)
			}
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		got := oracle.Unpack(oracle.Pack(vals))
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		in   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{3, 1, 2}, 2},
		{[]int64{4, 1, 3, 2}, 2}, // lower median
		{[]int64{-10, 1e9, 0}, 0},
	}
	for _, tc := range tests {
		if got := oracle.Median(tc.in); got != tc.want {
			t.Errorf("Median(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestBaselineODD(t *testing.T) {
	cfg := baseConfig()
	feeds, err := oracle.GenerateFeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := oracle.RunBaseline(cfg, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ODDHolds {
		t.Fatal("baseline ODD violated despite honest source majority")
	}
	wantPerNode := cfg.NumSources() * cfg.Cells * oracle.CellBits
	if res.PerNodeQueryBits != wantPerNode {
		t.Errorf("per-node = %d, want %d", res.PerNodeQueryBits, wantPerNode)
	}
}

func TestDownloadODCWithCrashNetwork(t *testing.T) {
	cfg := baseConfig()
	feeds, err := oracle.GenerateFeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	faulty := adversary.SpreadFaulty(cfg.Nodes, cfg.NodeFaults)
	runner := oracle.NewRunner(cfg, crashk.New, sim.FaultSpec{
		Model:  sim.FaultCrash,
		Faulty: faulty,
		Crash:  adversary.NewCrashRandom(cfg.Seed, faulty, 200),
	}, adversary.NewRandomUnit(cfg.Seed))
	res, err := oracle.RunDownload(cfg, feeds, runner)
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadFailures != 0 {
		t.Fatalf("%d download failures", res.DownloadFailures)
	}
	if !res.ODDHolds || !res.AllAgree {
		t.Fatalf("ODD=%v agree=%v", res.ODDHolds, res.AllAgree)
	}
	base, err := oracle.RunBaseline(cfg, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerNodeQueryBits >= base.PerNodeQueryBits {
		t.Errorf("download per-node %d not below baseline %d",
			res.PerNodeQueryBits, base.PerNodeQueryBits)
	}
}

func TestDownloadODCWithByzantineNetwork(t *testing.T) {
	cfg := baseConfig()
	feeds, err := oracle.GenerateFeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	faulty := adversary.SpreadFaulty(cfg.Nodes, cfg.NodeFaults)
	runner := oracle.NewRunner(cfg, committee.New, sim.FaultSpec{
		Model:        sim.FaultByzantine,
		Faulty:       faulty,
		NewByzantine: committee.NewLiar,
	}, adversary.NewRandomUnit(cfg.Seed+1))
	res, err := oracle.RunDownload(cfg, feeds, runner)
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadFailures != 0 {
		t.Fatalf("%d download failures", res.DownloadFailures)
	}
	if !res.ODDHolds || !res.AllAgree {
		t.Fatalf("ODD=%v agree=%v", res.ODDHolds, res.AllAgree)
	}
}

func TestDownloadFallbackOnFailure(t *testing.T) {
	// A runner whose downloads always fail: nodes fall back to direct
	// reads, ODD must still hold and the failure must be reported.
	cfg := baseConfig()
	feeds, err := oracle.GenerateFeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runner := func(input *bitarray.Array, seed int64) (*sim.Result, error) {
		res := &sim.Result{PerPeer: make([]sim.PeerStats, cfg.Nodes)}
		for i := range res.PerPeer {
			res.PerPeer[i] = sim.PeerStats{ID: sim.PeerID(i), Honest: true}
		}
		res.Finalize(input) // nobody terminated → incorrect
		return res, nil
	}
	res, err := oracle.RunDownload(cfg, feeds, runner)
	if err != nil {
		t.Fatal(err)
	}
	if res.DownloadFailures != cfg.NumSources() {
		t.Errorf("failures = %d, want %d", res.DownloadFailures, cfg.NumSources())
	}
	if !res.ODDHolds {
		t.Error("fallback path violated ODD")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []*oracle.Config{
		{Nodes: 1, Cells: 4},
		{Nodes: 4, NodeFaults: 4, Cells: 4},
		{Nodes: 4, NodeFaults: -1, Cells: 4},
		{Nodes: 4, SourceFaults: -1, Cells: 4},
		{Nodes: 4, Cells: 0},
	}
	for i, cfg := range bad {
		if _, err := oracle.GenerateFeeds(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestMedianFiltersByzantineSources(t *testing.T) {
	// Directly verify the honest-majority median property on adversarial
	// spreads.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		fs := rng.Intn(4)
		ns := 2*fs + 1
		honest := make([]int64, 0, fs+1)
		col := make([]int64, 0, ns)
		for s := 0; s < ns; s++ {
			if s < fs {
				col = append(col, int64(rng.Uint64()))
			} else {
				v := int64(1000 + rng.Intn(10))
				honest = append(honest, v)
				col = append(col, v)
			}
		}
		med := oracle.Median(col)
		min, max := honest[0], honest[0]
		for _, v := range honest {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if med < min || med > max {
			t.Fatalf("trial %d: median %d outside honest [%d, %d]", trial, med, min, max)
		}
	}
}
