package oracle_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/oracle"
)

func TestAggregateRules(t *testing.T) {
	vals := []int64{100, 5, 110, -900000, 105} // fs = 2 worst case: two wild
	if got := oracle.Aggregate(oracle.AggMedian, vals, 2); got != 100 {
		t.Errorf("median = %d, want 100", got)
	}
	if got := oracle.Aggregate(oracle.AggTrimmedMean, vals, 2); got != 100 {
		t.Errorf("trimmed mean = %d, want 100", got)
	}
	// Mid-range is dragged by the outlier.
	if got := oracle.Aggregate(oracle.AggMidRange, vals, 2); got > 0 {
		t.Errorf("mid-range = %d, expected outlier drag below 0", got)
	}
	if got := oracle.Aggregate(oracle.AggMedian, nil, 1); got != 0 {
		t.Errorf("empty aggregate = %d", got)
	}
	// Degenerate trimmed mean falls back to median.
	if got := oracle.Aggregate(oracle.AggTrimmedMean, []int64{7}, 2); got != 7 {
		t.Errorf("degenerate trimmed mean = %d", got)
	}
}

func TestAggregatorMetadata(t *testing.T) {
	if !oracle.AggMedian.Safe() || !oracle.AggTrimmedMean.Safe() {
		t.Error("safe rules misreported")
	}
	if oracle.AggMidRange.Safe() {
		t.Error("mid-range reported safe")
	}
	for _, a := range []oracle.Aggregator{oracle.AggMedian, oracle.AggTrimmedMean, oracle.AggMidRange, oracle.Aggregator(99)} {
		if a.String() == "" {
			t.Error("empty String()")
		}
	}
	for _, b := range []oracle.SourceBehavior{oracle.SourceOutlier, oracle.SourceOffset, oracle.SourceStuck, oracle.SourceBehavior(99)} {
		if b.String() == "" {
			t.Error("empty String()")
		}
	}
}

// TestODDSafetyMatrix runs the baseline pipeline under every (rule,
// source-behavior) pair: safe rules must always satisfy ODD; mid-range
// must violate it under outliers.
func TestODDSafetyMatrix(t *testing.T) {
	rules := []oracle.Aggregator{oracle.AggMedian, oracle.AggTrimmedMean, oracle.AggMidRange}
	lies := []oracle.SourceBehavior{oracle.SourceOutlier, oracle.SourceOffset, oracle.SourceStuck}
	for _, rule := range rules {
		for _, lie := range lies {
			name := fmt.Sprintf("%v/%v", rule, lie)
			t.Run(name, func(t *testing.T) {
				cfg := &oracle.Config{
					Nodes: 8, NodeFaults: 2, SourceFaults: 2, Cells: 24,
					Seed: 11, Agg: rule, SourceLies: lie,
				}
				feeds, err := oracle.GenerateFeeds(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := oracle.RunBaseline(cfg, feeds)
				if err != nil {
					t.Fatal(err)
				}
				switch {
				case rule.Safe() && !res.ODDHolds:
					t.Errorf("%s: safe rule violated ODD", name)
				case rule == oracle.AggMidRange && lie == oracle.SourceOutlier && res.ODDHolds:
					t.Errorf("%s: mid-range survived outliers — attack model too weak", name)
				}
			})
		}
	}
}

// TestQuickAggregateSafety: for safe rules, any mix of ≤ fs wild values
// among 2fs+1 stays within the honest range.
func TestQuickAggregateSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		fs := rng.Intn(4)
		ns := 2*fs + 1
		honest := make([]int64, 0, fs+1)
		col := make([]int64, 0, ns)
		for s := 0; s < ns; s++ {
			if s < fs {
				col = append(col, int64(rng.Uint64()>>1)-int64(rng.Uint64()>>1))
			} else {
				v := int64(5000 + rng.Intn(100))
				honest = append(honest, v)
				col = append(col, v)
			}
		}
		lo, hi := honest[0], honest[0]
		for _, v := range honest {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		for _, rule := range []oracle.Aggregator{oracle.AggMedian, oracle.AggTrimmedMean} {
			got := oracle.Aggregate(rule, col, fs)
			if got < lo || got > hi {
				t.Fatalf("trial %d: %v = %d outside honest [%d, %d] (fs=%d col=%v)",
					trial, rule, got, lo, hi, fs, col)
			}
		}
	}
}

// TestDownloadODCWithTrimmedMeanAndOffsetSources exercises the full
// Download pipeline under the subtle-offset attack with the trimmed-mean
// rule.
func TestDownloadODCWithTrimmedMeanAndOffsetSources(t *testing.T) {
	cfg := baseConfig()
	cfg.Agg = oracle.AggTrimmedMean
	cfg.SourceLies = oracle.SourceOffset
	feeds, err := oracle.GenerateFeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := oracle.RunBaseline(cfg, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ODDHolds {
		t.Fatal("trimmed mean must resist the offset attack")
	}
}
