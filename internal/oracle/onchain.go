package oracle

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/sim"
)

// OnChain models the oracle's on-chain component — the contract that
// closes steps (2) and (3) of the paper's pipeline: nodes submit their
// aggregated value arrays, and the contract publishes the first array
// that NodeFaults+1 distinct nodes submitted identically. At least one of
// those submitters is honest, so under a safe aggregation rule the
// published array inherits the ODD honest-range guarantee; Byzantine
// nodes alone can never clear the threshold. (Real systems add
// signatures and incentive games; the quorum rule is the part the DR
// model interacts with.)
type OnChain struct {
	need  int
	votes map[[8]byte]*submission
	// published is set once; later submissions are ignored, mirroring a
	// contract that accepts one report per round.
	published []int64
}

type submission struct {
	vals  []int64
	nodes map[sim.PeerID]bool
}

// NewOnChain returns a contract accepting with threshold nodeFaults+1.
func NewOnChain(nodeFaults int) *OnChain {
	return &OnChain{need: nodeFaults + 1, votes: make(map[[8]byte]*submission)}
}

// Submit records one node's report; it reports whether this submission
// triggered publication. Duplicate submissions from one node for the same
// array count once.
func (c *OnChain) Submit(node sim.PeerID, vals []int64) bool {
	if c.published != nil {
		return false
	}
	key := hashVals(vals)
	s := c.votes[key]
	if s == nil {
		s = &submission{vals: append([]int64(nil), vals...), nodes: make(map[sim.PeerID]bool)}
		c.votes[key] = s
	}
	if s.nodes[node] {
		return false
	}
	s.nodes[node] = true
	if len(s.nodes) >= c.need {
		c.published = s.vals
		return true
	}
	return false
}

// Published returns the accepted array, if any.
func (c *OnChain) Published() ([]int64, bool) {
	if c.published == nil {
		return nil, false
	}
	return append([]int64(nil), c.published...), true
}

// hashVals is an FNV-1a over the array (collision-resistance is not a
// security property here: the quorum check re-verifies nothing, exactly
// like the abstraction in the paper; the map key just buckets identical
// arrays).
func hashVals(vals []int64) [8]byte {
	var h uint64 = 14695981039346656037
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		for _, b := range buf {
			h ^= uint64(b)
			h *= 1099511628211
		}
	}
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], h)
	return out
}

// PipelineResult is the outcome of the full three-step oracle pipeline.
type PipelineResult struct {
	// ODC is the data-collection result (step 1 + per-node aggregation).
	ODC *Result
	// Published is the on-chain array, nil if the quorum never formed.
	Published []int64
	// ODDHolds reports the published array lies in the honest range.
	ODDHolds bool
	// ForgedAccepted reports a Byzantine-only array got published — must
	// always be false.
	ForgedAccepted bool
}

// RunPipeline executes collection (Download-based ODC), per-node
// aggregation, and on-chain publication. Byzantine oracle nodes submit a
// forged array; the quorum rule must reject it and publish the honest
// nodes' identical aggregate.
func RunPipeline(cfg *Config, feeds *Feeds, run DownloadRunner, byzNodes []sim.PeerID) (*PipelineResult, error) {
	odc, err := RunDownload(cfg, feeds, run)
	if err != nil {
		return nil, err
	}
	if odc.Published == nil {
		return nil, fmt.Errorf("oracle: ODC produced no values")
	}
	chain := NewOnChain(cfg.NodeFaults)

	// Byzantine nodes race to submit a forged array first.
	forged := make([]int64, cfg.Cells)
	for j := range forged {
		forged[j] = 1 << 60
	}
	forgedPublished := false
	for _, b := range byzNodes {
		if chain.Submit(b, forged) {
			forgedPublished = true
		}
	}

	// Honest nodes each submit their own aggregate, in ID order (any
	// order works; the quorum needs NodeFaults+1 identical submissions).
	byz := make(map[sim.PeerID]bool, len(byzNodes))
	for _, b := range byzNodes {
		byz[b] = true
	}
	ids := make([]int, 0, len(odc.PerNode))
	for id := range odc.PerNode {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, i := range ids {
		id := sim.PeerID(i)
		if byz[id] {
			continue
		}
		chain.Submit(id, odc.PerNode[id])
	}

	res := &PipelineResult{ODC: odc, ForgedAccepted: forgedPublished}
	if pub, ok := chain.Published(); ok {
		res.Published = pub
		res.ODDHolds = inHonestRange(feeds, pub)
	}
	return res, nil
}
