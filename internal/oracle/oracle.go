// Package oracle implements Section 4 of the paper: using Download
// protocols to cut the query cost of the Oracle Data Collection (ODC)
// step of blockchain oracles (Chainlink OCR / DORA-style systems).
//
// The setting: an off-chain network of n oracle nodes (up to t Byzantine)
// must report an array of m values (e.g., asset prices) drawn from
// n_s = 2·f_s+1 external data sources, of which up to f_s may be
// Byzantine. Honest sources report values inside a small honest spread;
// Byzantine sources report arbitrary outliers. The Oracle Data Delivery
// (ODD) property requires every published value to lie within the honest
// range [min honest, max honest] per cell.
//
// Baseline ODC (what deployed systems do): every node queries every cell
// of every selected source itself — n_s·m cell reads per node — then takes
// the per-cell median, which lands in the honest range because a majority
// of sources is honest.
//
// Download-based ODC (Theorem 4.2): for each source, the network runs one
// Download protocol execution with that source's (bit-packed) array as
// the external data, so every honest node learns every honest source's
// array exactly while paying only Õ(m/n)-ish queries per source; the
// per-cell median then gives the same ODD guarantee with the per-node
// query cost reduced by roughly a factor n.
//
// Byzantine sources are modeled as consistent liars (a fixed forged
// array). Equivocating or time-varying sources are the dynamic-data open
// problem the paper leaves for future work; see DESIGN.md.
package oracle

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitarray"
	"repro/internal/des"
	"repro/internal/sim"
)

// CellBits is the width of one oracle value when bit-packed for Download.
const CellBits = 64

// Config parameterizes one oracle scenario.
type Config struct {
	// Nodes is the oracle-network size n.
	Nodes int
	// NodeFaults is the Byzantine bound t for the network.
	NodeFaults int
	// SourceFaults is f_s; 2·f_s+1 sources are used.
	SourceFaults int
	// Cells is m, the number of values per source.
	Cells int
	// Seed drives feed generation and the simulations.
	Seed int64
	// Spread is the honest sources' relative jitter (default 0.001).
	Spread float64
	// Agg selects the aggregation rule (default AggMedian).
	Agg Aggregator
	// SourceLies selects how Byzantine sources misreport (default
	// SourceOutlier).
	SourceLies SourceBehavior
}

// NumSources returns n_s = 2·f_s+1.
func (c *Config) NumSources() int { return 2*c.SourceFaults + 1 }

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Nodes < 2:
		return fmt.Errorf("oracle: need at least 2 nodes, have %d", c.Nodes)
	case c.NodeFaults < 0 || c.NodeFaults >= c.Nodes:
		return fmt.Errorf("oracle: node fault bound %d out of range", c.NodeFaults)
	case c.SourceFaults < 0:
		return errors.New("oracle: negative source fault bound")
	case c.Cells < 1:
		return errors.New("oracle: need at least one cell")
	}
	return nil
}

// Feeds is a generated scenario: per-source value arrays plus the honest
// range per cell.
type Feeds struct {
	// Values[s][j] is source s's reported value for cell j. Sources
	// [0, SourceFaults) are Byzantine, the rest honest (the adversary
	// picks which; the indices are arbitrary labels).
	Values [][]int64
	// HonestMin and HonestMax bound the honest reports per cell.
	HonestMin, HonestMax []int64
	// ByzantineSources lists the forged sources.
	ByzantineSources []int
}

// GenerateFeeds synthesizes price-feed-like data: a random-walk true
// value per cell, honest sources reporting within Spread of it, Byzantine
// sources reporting huge outliers.
func GenerateFeeds(cfg *Config) (*Feeds, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spread := cfg.Spread
	if spread <= 0 {
		spread = 0.001
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x0facade5))
	ns := cfg.NumSources()
	f := &Feeds{
		Values:    make([][]int64, ns),
		HonestMin: make([]int64, cfg.Cells),
		HonestMax: make([]int64, cfg.Cells),
	}
	truth := make([]float64, cfg.Cells)
	price := 100_000.0 // cents
	for j := range truth {
		price *= 1 + (rng.Float64()-0.5)*0.02
		truth[j] = price
	}
	for s := 0; s < ns; s++ {
		f.Values[s] = make([]int64, cfg.Cells)
		byz := s < cfg.SourceFaults
		if byz {
			f.ByzantineSources = append(f.ByzantineSources, s)
		}
		stuck := int64(truth[0] * 0.9)
		for j := range f.Values[s] {
			if byz {
				switch cfg.SourceLies {
				case SourceOffset:
					// Honest-looking but shifted by 20 spreads.
					f.Values[s][j] = int64(truth[j] * (1 + 20*spread))
				case SourceStuck:
					f.Values[s][j] = stuck
				default: // SourceOutlier
					f.Values[s][j] = int64((rng.Float64() - 0.5) * 1e12)
				}
			} else {
				f.Values[s][j] = int64(truth[j] * (1 + (rng.Float64()-0.5)*2*spread))
			}
		}
	}
	for j := 0; j < cfg.Cells; j++ {
		first := true
		for s := cfg.SourceFaults; s < ns; s++ {
			v := f.Values[s][j]
			if first || v < f.HonestMin[j] {
				f.HonestMin[j] = v
			}
			if first || v > f.HonestMax[j] {
				f.HonestMax[j] = v
			}
			first = false
		}
	}
	return f, nil
}

// Pack encodes a value array as a bit array of CellBits·len(vals) bits,
// little-endian per cell — the "binary input extends to numbers" remark
// of the paper.
func Pack(vals []int64) *bitarray.Array {
	a := bitarray.New(len(vals) * CellBits)
	for j, v := range vals {
		u := uint64(v)
		for b := 0; b < CellBits; b++ {
			if u&(1<<uint(b)) != 0 {
				a.Set(j*CellBits+b, true)
			}
		}
	}
	return a
}

// Unpack decodes a bit array produced by Pack.
func Unpack(a *bitarray.Array) []int64 {
	m := a.Len() / CellBits
	out := make([]int64, m)
	for j := 0; j < m; j++ {
		var u uint64
		for b := 0; b < CellBits; b++ {
			if a.Get(j*CellBits + b) {
				u |= 1 << uint(b)
			}
		}
		out[j] = int64(u)
	}
	return out
}

// Median returns the median of vals (lower median for even counts).
func Median(vals []int64) int64 {
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}

// Result summarizes one ODC run.
type Result struct {
	// PerNodeQueryBits is the maximum source bits queried by any honest
	// node across all sources.
	PerNodeQueryBits int
	// TotalQueryBits sums query bits over all honest nodes and sources.
	TotalQueryBits int
	// Published[j] is the final value for cell j (from the first honest
	// node; AllAgree reports whether every honest node derived the same).
	Published []int64
	// PerNode holds each honest node's own aggregate (what it would
	// submit on-chain).
	PerNode map[sim.PeerID][]int64
	// AllAgree reports whether all honest nodes computed identical
	// medians.
	AllAgree bool
	// ODDHolds reports the Oracle Data Delivery property: every
	// published value of every honest node lies in the honest range.
	ODDHolds bool
	// DownloadFailures counts per-source Download executions that were
	// not fully correct (0 for the baseline).
	DownloadFailures int
}

// RunBaseline executes the classical ODC process: every node reads every
// cell from every source directly.
func RunBaseline(cfg *Config, feeds *Feeds) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ns := cfg.NumSources()
	perNode := ns * cfg.Cells * CellBits
	honest := cfg.Nodes - cfg.NodeFaults
	medians := medianPerCell(cfg, feeds.Values)
	res := &Result{
		PerNodeQueryBits: perNode,
		TotalQueryBits:   perNode * honest,
		Published:        medians,
		AllAgree:         true, // every node reads identical data
	}
	res.ODDHolds = inHonestRange(feeds, medians)
	return res, nil
}

// DownloadRunner executes one Download of a packed source array over the
// oracle network and returns the per-honest-node outputs plus the result.
// It abstracts the protocol choice so experiments can compare them.
type DownloadRunner func(input *bitarray.Array, seed int64) (*sim.Result, error)

// NewRunner builds a DownloadRunner over the des runtime for the given
// protocol factory and fault pattern.
func NewRunner(cfg *Config, newPeer func(sim.PeerID) sim.Peer, faults sim.FaultSpec, delays sim.DelayPolicy) DownloadRunner {
	return func(input *bitarray.Array, seed int64) (*sim.Result, error) {
		spec := &sim.Spec{
			Config: sim.Config{
				N: cfg.Nodes, T: cfg.NodeFaults, L: input.Len(),
				MsgBits: max(64, input.Len()/cfg.Nodes),
				Seed:    seed, Input: input,
			},
			NewPeer: newPeer,
			Delays:  delays,
			Faults:  faults,
		}
		return des.New().Run(spec)
	}
}

// RunDownload executes the Download-based ODC process: one Download per
// source, then per-node medians.
func RunDownload(cfg *Config, feeds *Feeds, run DownloadRunner) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ns := cfg.NumSources()
	// learned[node][s] = node's view of source s's array.
	type nodeView struct {
		vals [][]int64
		q    int
	}
	views := make(map[sim.PeerID]*nodeView)
	res := &Result{}
	for s := 0; s < ns; s++ {
		input := Pack(feeds.Values[s])
		dres, err := run(input, cfg.Seed+int64(s)*7907)
		if err != nil {
			return nil, fmt.Errorf("oracle: download of source %d: %w", s, err)
		}
		if !dres.Correct {
			res.DownloadFailures++
		}
		for i := range dres.PerPeer {
			ps := &dres.PerPeer[i]
			if !ps.Honest {
				continue
			}
			v := views[ps.ID]
			if v == nil {
				v = &nodeView{vals: make([][]int64, ns)}
				views[ps.ID] = v
			}
			v.q += ps.QueryBits
			if ps.Output != nil && ps.Output.Len() == input.Len() {
				v.vals[s] = Unpack(ps.Output)
			} else {
				// Failed download: fall back to direct reads for this
				// source so the pipeline still publishes (costed).
				v.vals[s] = append([]int64(nil), feeds.Values[s]...)
				v.q += cfg.Cells * CellBits
			}
		}
	}
	// Per-node medians.
	var nodeIDs []sim.PeerID
	for id := range views {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Slice(nodeIDs, func(i, j int) bool { return nodeIDs[i] < nodeIDs[j] })
	res.ODDHolds = true
	res.AllAgree = true
	res.PerNode = make(map[sim.PeerID][]int64, len(nodeIDs))
	for _, id := range nodeIDs {
		v := views[id]
		medians := medianPerCell(cfg, v.vals)
		res.PerNode[id] = medians
		if res.Published == nil {
			res.Published = medians
		} else if !equalVals(res.Published, medians) {
			res.AllAgree = false
		}
		if !inHonestRange(feeds, medians) {
			res.ODDHolds = false
		}
		if v.q > res.PerNodeQueryBits {
			res.PerNodeQueryBits = v.q
		}
		res.TotalQueryBits += v.q
	}
	return res, nil
}

func medianPerCell(cfg *Config, perSource [][]int64) []int64 {
	out := make([]int64, cfg.Cells)
	col := make([]int64, 0, len(perSource))
	for j := 0; j < cfg.Cells; j++ {
		col = col[:0]
		for _, src := range perSource {
			col = append(col, src[j])
		}
		out[j] = Aggregate(cfg.Agg, col, cfg.SourceFaults)
	}
	return out
}

func inHonestRange(feeds *Feeds, vals []int64) bool {
	for j, v := range vals {
		if v < feeds.HonestMin[j] || v > feeds.HonestMax[j] {
			return false
		}
	}
	return true
}

func equalVals(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
