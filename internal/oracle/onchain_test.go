package oracle_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/oracle"
	"repro/internal/protocols/committee"
	"repro/internal/sim"
)

func TestOnChainQuorum(t *testing.T) {
	c := oracle.NewOnChain(2) // need 3 identical
	a := []int64{1, 2, 3}
	b := []int64{9, 9, 9}
	if c.Submit(0, a) {
		t.Fatal("published after one vote")
	}
	if c.Submit(0, a) {
		t.Fatal("duplicate vote counted")
	}
	if c.Submit(1, b) || c.Submit(2, b) {
		t.Fatal("minority array published")
	}
	if c.Submit(1, a) {
		t.Fatal("published after two votes")
	}
	if !c.Submit(3, a) {
		t.Fatal("not published after three votes")
	}
	got, ok := c.Published()
	if !ok || len(got) != 3 || got[0] != 1 {
		t.Fatalf("published = %v, %v", got, ok)
	}
	// Post-publication submissions are ignored.
	if c.Submit(4, b) {
		t.Fatal("accepted after publication")
	}
}

func TestOnChainDistinguishesArrays(t *testing.T) {
	c := oracle.NewOnChain(1) // need 2
	if c.Submit(0, []int64{5}) {
		t.Fatal("early publish")
	}
	if c.Submit(1, []int64{6}) {
		t.Fatal("different arrays must not pool votes")
	}
	if !c.Submit(2, []int64{5}) {
		t.Fatal("matching array did not publish")
	}
}

func TestFullPipeline(t *testing.T) {
	cfg := baseConfig()
	feeds, err := oracle.GenerateFeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byzNodes := adversary.SpreadFaulty(cfg.Nodes, cfg.NodeFaults)
	runner := oracle.NewRunner(cfg, committee.New, sim.FaultSpec{
		Model:        sim.FaultByzantine,
		Faulty:       byzNodes,
		NewByzantine: committee.NewLiar,
	}, adversary.NewRandomUnit(cfg.Seed))
	res, err := oracle.RunPipeline(cfg, feeds, runner, byzNodes)
	if err != nil {
		t.Fatal(err)
	}
	if res.ForgedAccepted {
		t.Fatal("forged array published")
	}
	if res.Published == nil {
		t.Fatal("honest quorum never formed")
	}
	if !res.ODDHolds {
		t.Fatal("published values outside honest range")
	}
	if !res.ODC.AllAgree {
		t.Fatal("honest nodes disagreed despite correct downloads")
	}
}

func TestPipelineQuorumNeedsHonestAgreement(t *testing.T) {
	// A runner whose downloads fail forces the direct-read fallback,
	// which still yields identical per-node arrays — publication must
	// succeed through the fallback too.
	cfg := baseConfig()
	feeds, err := oracle.GenerateFeeds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byzNodes := adversary.SpreadFaulty(cfg.Nodes, cfg.NodeFaults)
	runner := oracle.NewRunner(cfg, committee.New, sim.FaultSpec{
		Model:        sim.FaultByzantine,
		Faulty:       byzNodes,
		NewByzantine: committee.NewLiar,
	}, adversary.NewRandomUnit(cfg.Seed+5))
	res, err := oracle.RunPipeline(cfg, feeds, runner, byzNodes)
	if err != nil {
		t.Fatal(err)
	}
	if res.Published == nil || !res.ODDHolds {
		t.Fatalf("pipeline failed: published=%v odd=%v", res.Published != nil, res.ODDHolds)
	}
}
