package oracle

import (
	"fmt"
	"sort"
)

// Aggregator selects how a node combines the per-source values of one
// cell into the value it publishes (step 3 of the oracle pipeline).
// With n_s = 2f_s+1 sources of which at most f_s are Byzantine, a rule is
// ODD-safe iff its output provably lies in the honest range; the library
// documents which rules are and tests both directions.
type Aggregator int

// Aggregation rules.
const (
	// AggMedian is the classical rule (OCR/DORA): ODD-safe, since at
	// least f_s+1 of the 2f_s+1 values are honest and the median has
	// honest values on both sides.
	AggMedian Aggregator = iota
	// AggTrimmedMean drops the f_s lowest and f_s highest values and
	// averages the rest: ODD-safe — every surviving value is bounded by
	// honest values on both sides, hence inside the honest range.
	AggTrimmedMean
	// AggMidRange averages the minimum and maximum: NOT ODD-safe — a
	// single Byzantine outlier drags it arbitrarily far. Included as the
	// cautionary baseline.
	AggMidRange
)

// String implements fmt.Stringer.
func (a Aggregator) String() string {
	switch a {
	case AggMedian:
		return "median"
	case AggTrimmedMean:
		return "trimmed-mean"
	case AggMidRange:
		return "mid-range"
	default:
		return fmt.Sprintf("aggregator(%d)", int(a))
	}
}

// Safe reports whether the rule is ODD-safe under an honest majority of
// sources.
func (a Aggregator) Safe() bool { return a == AggMedian || a == AggTrimmedMean }

// Aggregate combines one cell's per-source values under the rule, with
// fs the assumed bound on Byzantine sources.
func Aggregate(rule Aggregator, vals []int64, fs int) int64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	switch rule {
	case AggTrimmedMean:
		if len(s) <= 2*fs {
			return s[(len(s)-1)/2] // degenerate: fall back to median
		}
		kept := s[fs : len(s)-fs]
		var sum int64
		for _, v := range kept {
			sum += v
		}
		return sum / int64(len(kept))
	case AggMidRange:
		return (s[0] + s[len(s)-1]) / 2
	default: // AggMedian
		return s[(len(s)-1)/2]
	}
}

// SourceBehavior selects how Byzantine sources lie in GenerateFeeds.
type SourceBehavior int

// Byzantine source behaviors.
const (
	// SourceOutlier reports values orders of magnitude off — the blunt
	// attack every safe aggregator kills.
	SourceOutlier SourceBehavior = iota
	// SourceOffset reports honest-looking values shifted by a constant
	// multiple of the honest spread — the subtle attack that pulls any
	// mean-like rule toward the offset while the median holds.
	SourceOffset
	// SourceStuck reports one frozen value for every cell, modeling a
	// stale or halted feed.
	SourceStuck
)

// String implements fmt.Stringer.
func (b SourceBehavior) String() string {
	switch b {
	case SourceOutlier:
		return "outlier"
	case SourceOffset:
		return "offset"
	case SourceStuck:
		return "stuck"
	default:
		return fmt.Sprintf("source-behavior(%d)", int(b))
	}
}
