// Package hashmix holds the shared hash-RNG primitives behind every
// "deterministic by identity" fault schedule in the repo: the adversary's
// per-channel delay policies, netrt's network fault plan, and the source
// tier's fault plan all derive their decisions from these mixers, so a
// fault decision is a pure function of (seed, identity) rather than of
// goroutine arrival order. It is a leaf package (no repo dependencies)
// precisely so that both sim-level and sub-sim-level packages can use it
// without cycles.
package hashmix

import "math"

// Mix is the 64-bit finalizer of MurmurHash3: a cheap bijection with
// strong avalanche, good enough to decorrelate structured inputs such as
// (seed, channel, ordinal).
func Mix(z uint64) uint64 {
	z ^= z >> 33
	z *= 0xFF51AFD7ED558CCD
	z ^= z >> 33
	z *= 0xC4CEB9FE1A85EC53
	z ^= z >> 33
	return z
}

// Unit maps a hash to (0, 1].
func Unit(h uint64) float64 {
	u := float64(h%(1<<52)+1) / float64(uint64(1)<<52)
	return math.Min(u, 1)
}

// Mix64 folds a sequence of words into one well-mixed 64-bit hash. Equal
// word sequences give equal hashes; any differing word decorrelates the
// result completely.
func Mix64(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h = Mix(h ^ Mix(w))
	}
	return h
}

// MixUnit maps a word sequence to a uniform value in (0, 1]. It is the
// decision primitive of seeded fault plans: p < rate decides a fault with
// probability rate, reproducibly for the same words.
func MixUnit(words ...uint64) float64 {
	return Unit(Mix64(words...))
}
