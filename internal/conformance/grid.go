package conformance

import (
	"fmt"
	"io"
	"strings"

	"repro/download"
	"repro/internal/harden"
)

// GridConfig configures a conformance sweep grid (the drconform default
// mode): every protocol × compatible behavior × seed, one column per
// enabled runtime.
type GridConfig struct {
	N, L  int
	Seeds int
	// Live and TCP add the concurrent and real-socket columns.
	Live bool
	TCP  bool
	// Harden adds a column re-running each des cell under the hardening
	// supervisor.
	Harden bool
	// FlakySource adds a SRC column re-running each des cell against
	// SourcePlan.
	FlakySource bool
	SourcePlan  string
	// Mirrors, when non-empty, adds a MIR column re-running each des
	// cell with every query routed through the untrusted mirror fleet
	// described by this source.ParseMirrorPlan plan (Merkle-verified
	// replies, authoritative fallback).
	Mirrors string
	// Interrupt, when it becomes readable (usually by being closed from a
	// signal handler), stops the sweep at the next cell-run boundary. The
	// partial report is still returned with Interrupted set, so an
	// interrupted CI job can flush the matrix it has before dying.
	Interrupt <-chan struct{}
}

// gridRuntime describes one runtime column of the grid.
type gridRuntime struct {
	name    string
	live    bool
	tcp     bool
	source  string // non-empty: des runtime with this source fault plan
	mirrors string // non-empty: des runtime behind this mirror fleet plan
}

// supports reports whether the runtime can execute the behavior: the
// real-socket runtime only injects crash-from-start faults (its richer
// fault repertoire — drops, flaps, partitions — lives in drchaos).
func (r gridRuntime) supports(behavior download.FaultBehavior) bool {
	if !r.tcp {
		return true
	}
	return behavior == download.NoFaults || behavior == download.CrashImmediate
}

// GridCell is one (protocol, behavior) row of the sweep.
type GridCell struct {
	Proto    download.Protocol
	Behavior download.FaultBehavior
	Pass     map[string]int
	Fail     map[string]int
	LastFail string
	// Hardened-column tallies: runs where the supervisor detected a
	// violation, escalated, and whether it ended correct.
	HPass, HFail, HDetect, HEscal, HCorrect int
}

// GridReport is the outcome of a sweep.
type GridReport struct {
	Runtimes []string
	Cells    []*GridCell
	Harden   bool
	// Interrupted marks a sweep stopped early by GridConfig.Interrupt:
	// the matrix covers only the cell-runs finished before the signal.
	Interrupted bool
	// Failures counts failed cell-runs: incorrect outputs, runtime
	// errors, AND Q/M envelope violations — all of them must fail the
	// sweep's exit code.
	Failures int
}

// RunGrid executes the sweep. Every cell-run is checked for correctness
// and against the protocol's Q/M complexity envelope; both kinds of
// failure count toward GridReport.Failures.
func RunGrid(cfg GridConfig) *GridReport {
	runtimes := []gridRuntime{{name: "des"}}
	if cfg.Live {
		runtimes = append(runtimes, gridRuntime{name: "live", live: true})
	}
	if cfg.TCP {
		runtimes = append(runtimes, gridRuntime{name: "tcp", tcp: true})
	}
	if cfg.FlakySource {
		// The flaky-source column is the des runtime again, but with every
		// query routed through the seeded fault plan: same grid, plus
		// outages, lost replies, and transient refusals to recover from.
		runtimes = append(runtimes, gridRuntime{name: "src", source: cfg.SourcePlan})
	}
	if cfg.Mirrors != "" {
		// The mirror column is the des runtime with the fleet in front of
		// the source: same grid, but every query must survive Byzantine
		// mirrors — verified hits or authoritative fallbacks, identical
		// outputs, identical Q.
		runtimes = append(runtimes, gridRuntime{name: "mir", mirrors: cfg.Mirrors})
	}
	rep := &GridReport{Harden: cfg.Harden}
	for _, rt := range runtimes {
		rep.Runtimes = append(rep.Runtimes, rt.name)
	}
	interrupted := func() bool {
		select {
		case <-cfg.Interrupt:
			rep.Interrupted = true
			return true
		default:
			return false
		}
	}

	for _, info := range download.Protocols() {
		tBound := FaultBound(info, cfg.N)
		for _, behavior := range BehaviorsFor(info) {
			c := &GridCell{
				Proto: info.Protocol, Behavior: behavior,
				Pass: make(map[string]int), Fail: make(map[string]int),
			}
			rep.Cells = append(rep.Cells, c)
			for seed := 0; seed < cfg.Seeds && !interrupted(); seed++ {
				for _, rt := range runtimes {
					if !rt.supports(behavior) {
						continue
					}
					r, err := download.Run(download.Options{
						Protocol: info.Protocol,
						N:        cfg.N, T: tBound, L: cfg.L,
						Seed:         int64(seed),
						Behavior:     behavior,
						Live:         rt.live,
						TCP:          rt.tcp,
						SourceFaults: rt.source,
						Mirrors:      rt.mirrors,
					})
					switch {
					case err != nil:
						c.Fail[rt.name]++
						c.LastFail = err.Error()
					case !r.Correct:
						c.Fail[rt.name]++
						if len(r.Failures) > 0 {
							c.LastFail = r.Failures[0]
						}
					default:
						// A correct output that blew its complexity envelope
						// still fails the row: the Q/M contract is part of
						// conformance, not advice (see docs/SPEC.md).
						b := derivedMsgBits(cfg.N, cfg.L)
						if v := CheckEnvelope(info.Protocol, cfg.N, tBound, cfg.L, b, r); len(v) > 0 {
							c.Fail[rt.name]++
							c.LastFail = v[0]
						} else {
							c.Pass[rt.name]++
						}
					}
				}
				if cfg.Harden {
					r, err := download.RunHardened(download.Options{
						Protocol: info.Protocol,
						N:        cfg.N, T: tBound, L: cfg.L,
						Seed:     int64(seed),
						Behavior: behavior,
					}, harden.Policy{})
					switch {
					case err != nil:
						c.HFail++
						c.LastFail = err.Error()
					case !r.Correct:
						c.HFail++
						if len(r.Failures) > 0 {
							c.LastFail = r.Failures[0]
						}
					default:
						c.HPass++
						h := r.Hardening
						if h.Detected {
							c.HDetect++
						}
						if len(h.Escalations) > 1 {
							c.HEscal++
						}
						if h.Corrected {
							c.HCorrect++
						}
					}
				}
			}
			for _, rt := range runtimes {
				rep.Failures += c.Fail[rt.name]
			}
			rep.Failures += c.HFail
			if rep.Interrupted {
				return rep
			}
		}
	}
	return rep
}

// Write renders the sweep as the drconform pass/fail table.
func (r *GridReport) Write(w io.Writer) {
	name := func(b download.FaultBehavior) string {
		if b == download.NoFaults {
			return "(none)"
		}
		return string(b)
	}
	fmt.Fprintf(w, "%-12s %-14s", "PROTOCOL", "BEHAVIOR")
	for _, rt := range r.Runtimes {
		fmt.Fprintf(w, " %-8s", strings.ToUpper(rt))
	}
	if r.Harden {
		fmt.Fprintf(w, " %-16s", "HARDEN(d/e/c)")
	}
	fmt.Fprintf(w, " %s\n", "LAST FAILURE")
	tcpCol := false
	for _, rt := range r.Runtimes {
		if rt == "tcp" {
			tcpCol = true
		}
	}
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%-12s %-14s", c.Proto, name(c.Behavior))
		for _, rt := range r.Runtimes {
			tcpUnsupported := rt == "tcp" && tcpCol &&
				c.Behavior != download.NoFaults && c.Behavior != download.CrashImmediate
			if tcpUnsupported {
				fmt.Fprintf(w, " %-8s", "-")
				continue
			}
			fmt.Fprintf(w, " %-8s", fmt.Sprintf("%d/%d", c.Pass[rt], c.Fail[rt]))
		}
		if r.Harden {
			// d/e/c: runs where a violation was detected, where the ladder
			// escalated, and where the escalation ended corrected.
			fmt.Fprintf(w, " %-16s", fmt.Sprintf("%d/%d d%d e%d c%d",
				c.HPass, c.HFail, c.HDetect, c.HEscal, c.HCorrect))
		}
		fmt.Fprintf(w, " %s\n", c.LastFail)
	}
	switch {
	case r.Interrupted:
		fmt.Fprintf(w, "\nINTERRUPTED: partial matrix (%d cells started, %d cell-runs failed so far)\n",
			len(r.Cells), r.Failures)
	case r.Failures > 0:
		fmt.Fprintf(w, "\nFAILED: %d cell-runs failed\n", r.Failures)
	default:
		fmt.Fprintf(w, "\nOK: %d cells, all runs correct and within envelopes\n", len(r.Cells))
	}
}
