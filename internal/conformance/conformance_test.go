package conformance

import (
	"flag"
	"strings"
	"testing"
	"time"

	"repro/download"
)

var update = flag.Bool("update", false, "regenerate the fixture corpus (refuses semantic drift without a CorpusVersion bump)")

const fixturesDir = "fixtures"

// TestCorpus is the des column of the conformance tier: every committed
// case re-executed on the deterministic runtime and diffed field by
// field, plus the frame and replay integrity checks. With -update it
// regenerates the corpus instead (see gen.go for the drift refusal).
func TestCorpus(t *testing.T) {
	if *update {
		if err := Generate(fixturesDir); err != nil {
			t.Fatalf("regenerate: %v", err)
		}
		t.Log("rewrote fixture corpus")
		return
	}
	corpus, err := Load(fixturesDir)
	if err != nil {
		t.Fatalf("load corpus (regenerate with -update): %v", err)
	}
	rep := RunFixtures(corpus, Config{Runtimes: []Runtime{DES}})
	if rep.Failed() {
		var b strings.Builder
		rep.WriteMatrix(&b)
		t.Fatalf("des fixture conformance failed:\n%s", b.String())
	}
}

// TestCorpusSM is the state-machine column of the conformance tier: the
// corpus re-executed on the multiplexed des scheduler (Workers > 1) and
// held to the full des field mask — byte-identical results or fail.
func TestCorpusSM(t *testing.T) {
	if *update {
		t.Skip("regeneration runs in TestCorpus")
	}
	corpus, err := Load(fixturesDir)
	if err != nil {
		t.Fatalf("load corpus (regenerate with -update): %v", err)
	}
	rep := RunFixtures(corpus, Config{Runtimes: []Runtime{SM}})
	if rep.Failed() {
		var b strings.Builder
		rep.WriteMatrix(&b)
		t.Fatalf("sm fixture conformance failed:\n%s", b.String())
	}
}

// TestCorpusMirrors is the live and tcp half of the mirror-row
// acceptance gate (des and sm run the full corpus in TestCorpus and
// TestCorpusSM): every pinned mirror case — honest fleet and
// Byzantine-majority fleet — must conform on the concurrent and
// real-socket runtimes too, which exercises the ROOT/QPROOF/QUERYSRC
// frames end to end.
func TestCorpusMirrors(t *testing.T) {
	if *update {
		t.Skip("regeneration runs in TestCorpus")
	}
	if testing.Short() {
		t.Skip("socket runtime corpus in -short mode")
	}
	corpus, err := Load(fixturesDir)
	if err != nil {
		t.Fatalf("load corpus (regenerate with -update): %v", err)
	}
	mirrors := 0
	for _, c := range corpus.Results.Cases {
		if c.Mirrors != "" {
			mirrors++
		}
	}
	if mirrors == 0 {
		t.Fatal("corpus has no mirror cases (regenerate with -update)")
	}
	rep := RunFixtures(corpus, Config{
		Runtimes:  []Runtime{Live, TCP},
		LiveScale: 200 * time.Microsecond,
		Filter:    func(c *Case) bool { return c.Mirrors != "" },
	})
	if rep.Failed() {
		var b strings.Builder
		rep.WriteMatrix(&b)
		t.Fatalf("mirror rows failed live/tcp conformance:\n%s", b.String())
	}
}

// TestCorpusChurn is the live and tcp half of the crash-recovery
// acceptance gate: every pinned churn case must conform on the
// concurrent and real-socket runtimes. The tcp cells exercise the full
// recovery machinery end to end — the peer process crashes at its
// action count, the rejoined incarnation restores from the durable
// checkpoint store and resumes over the RESUME handshake — and must
// still pin the runtime-invariant fields (correctness, output bits,
// rejoin count).
func TestCorpusChurn(t *testing.T) {
	if *update {
		t.Skip("regeneration runs in TestCorpus")
	}
	if testing.Short() {
		t.Skip("socket runtime corpus in -short mode")
	}
	corpus, err := Load(fixturesDir)
	if err != nil {
		t.Fatalf("load corpus (regenerate with -update): %v", err)
	}
	churn := 0
	for _, c := range corpus.Results.Cases {
		if c.Churn != "" {
			churn++
		}
	}
	if churn == 0 {
		t.Fatal("corpus has no churn cases (regenerate with -update)")
	}
	rep := RunFixtures(corpus, Config{
		Runtimes:  []Runtime{Live, TCP},
		LiveScale: 200 * time.Microsecond,
		Filter:    func(c *Case) bool { return c.Churn != "" },
	})
	if rep.Failed() {
		var b strings.Builder
		rep.WriteMatrix(&b)
		t.Fatalf("churn rows failed live/tcp conformance:\n%s", b.String())
	}
}

// TestCorpusCoversAllProtocols guards the grid enumeration: a protocol
// added to the registry without fixture coverage must fail here, not
// silently skip conformance.
func TestCorpusCoversAllProtocols(t *testing.T) {
	corpus, err := Load(fixturesDir)
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[string]bool)
	for _, c := range corpus.Results.Cases {
		covered[c.Protocol] = true
	}
	for _, info := range download.Protocols() {
		if !covered[string(info.Protocol)] {
			t.Errorf("protocol %s has no fixture cases (regenerate with -update)", info.Protocol)
		}
	}
}

// TestNegativeControl perturbs committed fixtures and requires the
// runner to fail with a field-level diff: a conformance gate that
// cannot detect a wrong fixture detects nothing.
func TestNegativeControl(t *testing.T) {
	corpus, err := Load(fixturesDir)
	if err != nil {
		t.Fatal(err)
	}
	target := corpus.Results.Cases[0].Name

	t.Run("perturbed-q", func(t *testing.T) {
		corrupted := *corpus
		corrupted.Results.Cases = append([]Case(nil), corpus.Results.Cases...)
		corrupted.Results.Cases[0].Expect.Q += 7
		rep := RunFixtures(&corrupted, Config{
			Runtimes: []Runtime{DES},
			Filter:   func(c *Case) bool { return c.Name == target },
		})
		if !rep.Failed() {
			t.Fatal("perturbed fixture passed conformance")
		}
		var found bool
		for _, o := range rep.Outcomes {
			for _, d := range o.Diffs {
				if d.Field == "q" {
					found = true
				}
			}
		}
		if !found {
			t.Fatalf("no field-level q diff reported: %+v", rep.Outcomes)
		}
	})

	t.Run("perturbed-output", func(t *testing.T) {
		corrupted := *corpus
		corrupted.Results.Cases = append([]Case(nil), corpus.Results.Cases...)
		corrupted.Results.Cases[0].Expect.OutputFNV = "0000000000000000"
		rep := RunFixtures(&corrupted, Config{
			Runtimes: []Runtime{DES},
			Filter:   func(c *Case) bool { return c.Name == target },
		})
		if !rep.Failed() {
			t.Fatal("perturbed output hash passed conformance")
		}
	})

	t.Run("perturbed-frame", func(t *testing.T) {
		frames := Frames{Version: CorpusVersion, Frames: append([]Frame(nil), corpus.Frames.Frames...)}
		// Flip the tag byte to an unknown value: decode must fail.
		frames.Frames[0].Hex = "ff" + frames.Frames[0].Hex[2:]
		if errs := VerifyFrames(&frames); len(errs) == 0 {
			t.Fatal("perturbed frame verified")
		}
	})

	t.Run("perturbed-netrt-frame", func(t *testing.T) {
		frames := Frames{Version: CorpusVersion, Frames: append([]Frame(nil), corpus.Frames.Frames...)}
		idx := -1
		for i, f := range frames.Frames {
			if f.Codec == "netrt" && f.Name == "netrt-qproof" {
				idx = i
			}
		}
		if idx < 0 {
			t.Fatal("no pinned netrt-qproof frame (regenerate with -update)")
		}
		// Truncate the final proof hash: the strict decoder must reject.
		f := frames.Frames[idx]
		f.Hex = f.Hex[:len(f.Hex)-2]
		frames.Frames[idx] = f
		if errs := VerifyFrames(&frames); len(errs) == 0 {
			t.Fatal("truncated netrt proof frame verified")
		}
	})

	t.Run("perturbed-replay-hash", func(t *testing.T) {
		replays := Replays{Version: CorpusVersion, Replays: append([]ReplayRef(nil), corpus.Replays.Replays...)}
		replays.Replays[0].SHA256 = strings.Repeat("0", 64)
		if errs := VerifyReplays(corpus.Dir, &replays); len(errs) == 0 {
			t.Fatal("perturbed replay hash verified")
		}
	})
}

// TestEnvelopeViolationDetected pins the envelope checker itself: a
// report past the Q bound must be flagged.
func TestEnvelopeViolationDetected(t *testing.T) {
	rep := &download.Report{Q: 1 << 30, Msgs: 1 << 30}
	v := CheckEnvelope(download.Naive, 8, 4, 256, 64, rep)
	if len(v) != 2 {
		t.Fatalf("want Q and msgs violations, got %v", v)
	}
	ok := &download.Report{Q: 256, Msgs: 0}
	if v := CheckEnvelope(download.Naive, 8, 4, 256, 64, ok); len(v) != 0 {
		t.Fatalf("clean report flagged: %v", v)
	}
	if v := CheckEnvelope(download.Protocol("unknown"), 8, 4, 256, 64, rep); v != nil {
		t.Fatalf("unregistered protocol flagged: %v", v)
	}
}

// TestDriftRefusal pins the -update semantics: under an unchanged
// CorpusVersion, changed or removed expectations refuse regeneration;
// added cases are corpus growth and pass.
func TestDriftRefusal(t *testing.T) {
	base := &Corpus{
		Results: Results{Version: CorpusVersion, Cases: []Case{
			{Name: "a", Expect: Expect{Q: 1}},
			{Name: "b", Expect: Expect{Q: 2}},
		}},
		Frames:  Frames{Version: CorpusVersion, Frames: []Frame{{Name: "f", L: 64, Hex: "0a"}}},
		Replays: Replays{Version: CorpusVersion, Replays: []ReplayRef{{File: "r.dsr", SHA256: "aa"}}},
	}
	clone := func() *Corpus {
		c := *base
		c.Results.Cases = append([]Case(nil), base.Results.Cases...)
		c.Frames.Frames = append([]Frame(nil), base.Frames.Frames...)
		c.Replays.Replays = append([]ReplayRef(nil), base.Replays.Replays...)
		return &c
	}

	if err := checkDrift(base, clone()); err != nil {
		t.Fatalf("identical corpus reported drift: %v", err)
	}

	grown := clone()
	grown.Results.Cases = append(grown.Results.Cases, Case{Name: "c", Expect: Expect{Q: 3}})
	if err := checkDrift(base, grown); err != nil {
		t.Fatalf("corpus growth reported drift: %v", err)
	}

	changed := clone()
	changed.Results.Cases[0].Expect.Q = 99
	err := checkDrift(base, changed)
	if err == nil {
		t.Fatal("changed expectation not reported as drift")
	}
	if !strings.Contains(err.Error(), "case a") || !strings.Contains(err.Error(), "bump CorpusVersion") {
		t.Fatalf("unhelpful drift error: %v", err)
	}

	removed := clone()
	removed.Results.Cases = removed.Results.Cases[1:]
	if checkDrift(base, removed) == nil {
		t.Fatal("removed case not reported as drift")
	}

	reframe := clone()
	reframe.Frames.Frames[0].Hex = "0b"
	if checkDrift(base, reframe) == nil {
		t.Fatal("changed frame encoding not reported as drift")
	}

	rehash := clone()
	rehash.Replays.Replays[0].SHA256 = "bb"
	if checkDrift(base, rehash) == nil {
		t.Fatal("changed replay bytes not reported as drift")
	}
}
