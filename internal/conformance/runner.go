package conformance

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/download"
	"repro/internal/dst"
	"repro/internal/netrt"
	"repro/internal/wire"
)

// Runtime names one execution engine column of the conformance matrix.
type Runtime string

// The conformance runtimes.
const (
	DES  Runtime = "des"  // deterministic discrete-event engine
	Live Runtime = "live" // goroutine runtime (wall-clock, scaled)
	TCP  Runtime = "tcp"  // real-socket runtime (internal/netrt)
	SM   Runtime = "sm"   // state-machine peer core on the multiplexed des scheduler
)

// smWorkers is the worker count the sm column runs under. Any value > 1
// engages the speculative scheduler; the determinism property
// (internal/des TestWorkerDeterminism) covers other counts.
const smWorkers = 4

// Supports reports whether the runtime can execute a case at all. A
// skipped cell is not a pass: the matrix prints it as "-", and the
// equivalence suite asserts the documented rejection error for the
// unsupported combinations.
func (rt Runtime) Supports(c *Case) bool {
	switch rt {
	case Live:
		// The live runtime runs every case: it gained the source
		// resilience tier and churn alongside the socket runtime.
		return true
	case TCP:
		// Real sockets support only crash-from-start faults; source
		// plans are excluded because their time-valued fields mean
		// virtual units in fixtures but seconds on sockets. Churn runs:
		// its pinned fields (correctness, output, rejoin count) are
		// time-invariant, so the downtime unit difference cannot drift.
		return c.SourceFaults == "" &&
			(c.Behavior == "" || c.Behavior == string(download.CrashImmediate))
	case SM:
		// Source fault plans and churn force the des engine back onto
		// the serial loop (see des.parallelOK), so running them here
		// would re-test the DES column under another name; the cell is
		// skipped to keep the sm column an honest gate on the
		// speculative scheduler.
		return c.SourceFaults == "" && c.Churn == ""
	default:
		return true
	}
}

// qScheduleInvariant lists the protocols whose fault-free query
// complexity Q does not depend on message arrival order: their query
// pattern is fixed by (n, t, L, seed) alone, so the des-pinned Q must
// reproduce on the concurrent and socket runtimes too (the des-vs-live
// equivalence property asserts this). The crashk family is excluded:
// its reassignment stage reacts to whichever progress reports arrive
// first, so even fault-free runs legitimately vary Q across schedules
// (see docs/SPEC.md, "Runtime invariance").
var qScheduleInvariant = map[string]bool{
	string(download.Naive):      true,
	string(download.Crash1):     true,
	string(download.Committee):  true,
	string(download.TwoCycle):   true,
	string(download.MultiCycle): true,
}

// fieldsFor returns the Expect fields the runtime must reproduce for a
// case. Correctness and the output bits are runtime-invariant; Q is
// additionally pinned on live/tcp for fault-free cases of the
// schedule-invariant protocols; the cost/schedule fields (msgs, events,
// time) and source counters are deterministic only on the des engine.
func fieldsFor(rt Runtime, c *Case) []string {
	fields := []string{"correct", "output_fnv"}
	if rt == DES || rt == SM {
		// The sm column must be byte-identical to des: the speculative
		// scheduler applies every Result-visible effect at the serial
		// position, so the full des mask applies unchanged. (Mirror
		// cases additionally pin the des parallelOK gate: the mirror
		// tier falls back to the serial loop at any worker count, so
		// the sm column must reproduce des exactly there too.)
		return append(fields, "q", "msgs", "msg_bits", "events", "time",
			"src_failures", "src_retries", "breaker_opens",
			"mirror_hits", "proof_failures", "fallback_queries",
			"rejoins", "warm_hit_bits")
	}
	if c.FaultFree() && qScheduleInvariant[c.Protocol] {
		fields = append(fields, "q")
	}
	if c.Churn != "" {
		// The rejoin count is part of the contract on every runtime: a
		// churn peer crashes at its action count and (Downtime >= 0)
		// comes back, wall clocks or not. WarmHitBits stays des-only —
		// it depends on which deliveries landed before the crash.
		fields = append(fields, "rejoins")
	}
	return fields
}

// FieldDiff is one field-level conformance mismatch.
type FieldDiff struct {
	Field string
	Got   string
	Want  string
}

func (d FieldDiff) String() string {
	return fmt.Sprintf("%s: got %s, want %s", d.Field, d.Got, d.Want)
}

// CaseOutcome is the verdict of one (case, runtime) cell.
type CaseOutcome struct {
	Case    *Case
	Runtime Runtime
	// Skipped marks a cell the runtime does not support.
	Skipped bool
	// Err is a configuration or runtime error (not a mismatch).
	Err error
	// Diffs are field-level mismatches against the pinned expectation.
	Diffs []FieldDiff
	// Envelope lists Q/M complexity-envelope violations.
	Envelope []string
}

// Failed reports the cell failed conformance.
func (o *CaseOutcome) Failed() bool {
	return !o.Skipped && (o.Err != nil || len(o.Diffs) > 0 || len(o.Envelope) > 0)
}

// Config tunes a fixture run.
type Config struct {
	// Runtimes selects the matrix columns; empty means {DES, Live}.
	Runtimes []Runtime
	// LiveScale overrides the live runtime's virtual-unit wall duration
	// (0 keeps the library default). The conformance gate runs many
	// live executions, so it uses a sub-millisecond scale.
	LiveScale time.Duration
	// Filter, when non-nil, limits the run to matching cases.
	Filter func(*Case) bool
}

// Report is the outcome of a full fixture run.
type Report struct {
	Runtimes []Runtime
	Outcomes []CaseOutcome
	// FrameErrs and ReplayErrs are corpus-integrity failures (frame
	// round-trip mismatches, replay hash/verification drift).
	FrameErrs  []error
	ReplayErrs []error
}

// Failed reports whether any cell or corpus check failed.
func (r *Report) Failed() bool {
	if len(r.FrameErrs) > 0 || len(r.ReplayErrs) > 0 {
		return true
	}
	for i := range r.Outcomes {
		if r.Outcomes[i].Failed() {
			return true
		}
	}
	return false
}

// RunCase executes one case on one runtime and diffs the outcome.
func RunCase(c *Case, rt Runtime, cfg *Config) CaseOutcome {
	out := CaseOutcome{Case: c, Runtime: rt}
	if !rt.Supports(c) {
		out.Skipped = true
		return out
	}
	churn, err := download.ParseChurn(c.Churn)
	if err != nil {
		out.Err = err
		return out
	}
	opts := download.Options{
		Protocol: download.Protocol(c.Protocol),
		N:        c.N, T: c.T, L: c.L, MsgBits: c.MsgBits,
		Seed:         c.Seed,
		Behavior:     download.FaultBehavior(c.Behavior),
		SourceFaults: c.SourceFaults,
		Mirrors:      c.Mirrors,
		Churn:        churn,
		Live:         rt == Live,
		TCP:          rt == TCP,
	}
	if rt == Live {
		opts.LiveTimeScale = cfg.LiveScale
	}
	if rt == SM {
		opts.Workers = smWorkers
	}
	if rt == TCP {
		for _, cp := range churn {
			if cp.Downtime >= 0 {
				// Rejoin over sockets crosses a process restart and needs
				// the durable checkpoint store.
				dir, err := os.MkdirTemp("", "drconform-ckpt")
				if err != nil {
					out.Err = err
					return out
				}
				defer os.RemoveAll(dir)
				opts.CheckpointDir = dir
				break
			}
		}
	}
	rep, err := download.Run(opts)
	if err != nil {
		out.Err = err
		return out
	}
	out.Diffs = diff(c, rep, fieldsFor(rt, c))
	out.Envelope = CheckEnvelope(opts.Protocol, c.N, c.T, c.L, c.MsgBits, rep)
	return out
}

// diff compares the report against the case's pinned expectation on the
// selected fields.
func diff(c *Case, rep *download.Report, fields []string) []FieldDiff {
	want := c.Expect
	got := Expect{
		Correct:   rep.Correct,
		OutputFNV: HashBits(rep.Output),
		Q:         rep.Q,
		Msgs:      rep.Msgs,
		MsgBits:   rep.MsgBits,
		Events:    rep.Events,
		Time:      fmt.Sprintf("%.4f", rep.Time),

		SrcFailures:  rep.SourceFailures,
		SrcRetries:   rep.SourceRetries,
		BreakerOpens: rep.BreakerOpens,

		MirrorHits:      rep.MirrorHits,
		ProofFailures:   rep.ProofFailures,
		FallbackQueries: rep.FallbackQueries,

		Rejoins:     rep.Rejoins,
		WarmHitBits: rep.WarmHitBits,
	}
	var diffs []FieldDiff
	add := func(field string, gotV, wantV any) {
		if gotV != wantV {
			diffs = append(diffs, FieldDiff{field, fmt.Sprint(gotV), fmt.Sprint(wantV)})
		}
	}
	for _, f := range fields {
		switch f {
		case "correct":
			add(f, got.Correct, want.Correct)
		case "output_fnv":
			add(f, got.OutputFNV, want.OutputFNV)
		case "q":
			add(f, got.Q, want.Q)
		case "msgs":
			add(f, got.Msgs, want.Msgs)
		case "msg_bits":
			add(f, got.MsgBits, want.MsgBits)
		case "events":
			add(f, got.Events, want.Events)
		case "time":
			add(f, got.Time, want.Time)
		case "src_failures":
			add(f, got.SrcFailures, want.SrcFailures)
		case "src_retries":
			add(f, got.SrcRetries, want.SrcRetries)
		case "breaker_opens":
			add(f, got.BreakerOpens, want.BreakerOpens)
		case "mirror_hits":
			add(f, got.MirrorHits, want.MirrorHits)
		case "proof_failures":
			add(f, got.ProofFailures, want.ProofFailures)
		case "fallback_queries":
			add(f, got.FallbackQueries, want.FallbackQueries)
		case "rejoins":
			add(f, got.Rejoins, want.Rejoins)
		case "warm_hit_bits":
			add(f, got.WarmHitBits, want.WarmHitBits)
		}
	}
	return diffs
}

// VerifyFrames round-trips every pinned frame under its codec: decode,
// re-encode, require byte identity. Protocol-message frames go through
// wire.Unmarshal/Marshal; the mirror-tier frames go through the netrt
// socket codec.
func VerifyFrames(frames *Frames) []error {
	var errs []error
	for _, f := range frames.Frames {
		raw, err := hex.DecodeString(f.Hex)
		if err != nil {
			errs = append(errs, fmt.Errorf("frame %s: bad hex: %w", f.Name, err))
			continue
		}
		if f.Codec == "netrt" {
			enc, err := netrt.RoundTripMirrorFrame(raw)
			if err != nil {
				errs = append(errs, fmt.Errorf("frame %s: decode: %w", f.Name, err))
			} else if !bytes.Equal(enc, raw) {
				errs = append(errs, fmt.Errorf("frame %s: re-encode drift:\n got  %x\n want %s",
					f.Name, enc, f.Hex))
			}
			continue
		}
		if f.Codec != "" {
			errs = append(errs, fmt.Errorf("frame %s: unknown codec %q", f.Name, f.Codec))
			continue
		}
		msg, err := wire.Unmarshal(raw, f.L)
		if err != nil {
			errs = append(errs, fmt.Errorf("frame %s: decode: %w", f.Name, err))
			continue
		}
		enc, err := wire.Marshal(msg)
		if err != nil {
			errs = append(errs, fmt.Errorf("frame %s: re-encode: %w", f.Name, err))
			continue
		}
		if !strings.EqualFold(hex.EncodeToString(enc), f.Hex) {
			errs = append(errs, fmt.Errorf("frame %s: re-encode drift:\n got  %x\n want %s",
				f.Name, enc, f.Hex))
		}
	}
	return errs
}

// VerifyReplays checks every replay reference: the file bytes must hash
// to the pinned sha256, and the replay must still verify (re-execute to
// its recorded expectation and event hash) on the des engine.
func VerifyReplays(dir string, replays *Replays) []error {
	var errs []error
	for _, ref := range replays.Replays {
		path := filepath.Join(dir, ref.File)
		data, err := os.ReadFile(path)
		if err != nil {
			errs = append(errs, fmt.Errorf("replay %s: %w", ref.File, err))
			continue
		}
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); got != ref.SHA256 {
			errs = append(errs, fmt.Errorf("replay %s: sha256 drift:\n got  %s\n want %s",
				ref.File, got, ref.SHA256))
			continue
		}
		r, err := dst.Parse(data)
		if err != nil {
			errs = append(errs, fmt.Errorf("replay %s: parse: %w", ref.File, err))
			continue
		}
		if r.Expect != ref.Expect || r.EventHash != ref.EventHash {
			errs = append(errs, fmt.Errorf("replay %s: pinned expectation drift: file (%s, %s) vs ref (%s, %s)",
				ref.File, r.Expect, r.EventHash, ref.Expect, ref.EventHash))
			continue
		}
		if _, err := dst.Verify(r); err != nil {
			errs = append(errs, fmt.Errorf("replay %s: %w", ref.File, err))
		}
	}
	return errs
}

// RunFixtures executes the corpus on every configured runtime and
// verifies the frame and replay fixtures.
func RunFixtures(corpus *Corpus, cfg Config) *Report {
	if len(cfg.Runtimes) == 0 {
		cfg.Runtimes = []Runtime{DES, Live}
	}
	rep := &Report{Runtimes: cfg.Runtimes}
	for i := range corpus.Results.Cases {
		c := &corpus.Results.Cases[i]
		if cfg.Filter != nil && !cfg.Filter(c) {
			continue
		}
		for _, rt := range cfg.Runtimes {
			rep.Outcomes = append(rep.Outcomes, RunCase(c, rt, &cfg))
		}
	}
	if cfg.Filter == nil {
		rep.FrameErrs = VerifyFrames(&corpus.Frames)
		rep.ReplayErrs = VerifyReplays(corpus.Dir, &corpus.Replays)
	}
	return rep
}

// WriteMatrix renders the protocol×runtime pass matrix followed by
// field-level diffs for every failing cell and any corpus-integrity
// errors.
func (r *Report) WriteMatrix(w io.Writer) {
	type tally struct{ pass, fail, skip int }
	rows := make(map[string]map[Runtime]*tally)
	var protos []string
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		cells, ok := rows[o.Case.Protocol]
		if !ok {
			cells = make(map[Runtime]*tally)
			rows[o.Case.Protocol] = cells
			protos = append(protos, o.Case.Protocol)
		}
		cell := cells[o.Runtime]
		if cell == nil {
			cell = &tally{}
			cells[o.Runtime] = cell
		}
		switch {
		case o.Skipped:
			cell.skip++
		case o.Failed():
			cell.fail++
		default:
			cell.pass++
		}
	}
	sort.Strings(protos)
	fmt.Fprintf(w, "%-12s", "PROTOCOL")
	for _, rt := range r.Runtimes {
		fmt.Fprintf(w, " %-10s", strings.ToUpper(string(rt)))
	}
	fmt.Fprintln(w)
	for _, p := range protos {
		fmt.Fprintf(w, "%-12s", p)
		for _, rt := range r.Runtimes {
			cell := rows[p][rt]
			switch {
			case cell == nil || cell.pass+cell.fail == 0:
				fmt.Fprintf(w, " %-10s", "-")
			case cell.fail > 0:
				fmt.Fprintf(w, " %-10s", fmt.Sprintf("FAIL %d/%d", cell.fail, cell.pass+cell.fail))
			default:
				fmt.Fprintf(w, " %-10s", fmt.Sprintf("ok %d", cell.pass))
			}
		}
		fmt.Fprintln(w)
	}
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		if !o.Failed() {
			continue
		}
		fmt.Fprintf(w, "\nFAIL %s [%s]\n", o.Case.Name, o.Runtime)
		if o.Err != nil {
			fmt.Fprintf(w, "  error: %v\n", o.Err)
		}
		for _, d := range o.Diffs {
			fmt.Fprintf(w, "  %s\n", d)
		}
		for _, v := range o.Envelope {
			fmt.Fprintf(w, "  %s\n", v)
		}
	}
	for _, err := range r.FrameErrs {
		fmt.Fprintf(w, "\nFAIL frame fixture: %v\n", err)
	}
	for _, err := range r.ReplayErrs {
		fmt.Fprintf(w, "\nFAIL replay fixture: %v\n", err)
	}
}
