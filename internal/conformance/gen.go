package conformance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/download"
	"repro/internal/adversary"
	"repro/internal/bitarray"
	"repro/internal/dst"
	"repro/internal/intset"
	"repro/internal/merkle"
	"repro/internal/netrt"
	"repro/internal/protocols/committee"
	"repro/internal/protocols/crash1"
	"repro/internal/protocols/crashk"
	"repro/internal/protocols/segproto"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/wire"
)

// BehaviorsFor returns the fault behaviors meaningful for a protocol's
// fault model, plus the failure-free baseline. Shared by the drconform
// grid and the fixture generator so both sweep the same behavior space.
func BehaviorsFor(info download.Info) []download.FaultBehavior {
	switch info.FaultModel {
	case "crash":
		return []download.FaultBehavior{
			download.NoFaults, download.CrashImmediate, download.CrashRandom,
		}
	case "byzantine":
		return []download.FaultBehavior{
			download.NoFaults, download.CrashRandom, download.Silent,
			download.Spam, download.Liar, download.Equivocate,
		}
	default: // "any"
		return []download.FaultBehavior{
			download.NoFaults, download.CrashImmediate, download.Silent,
			download.Spam, download.Liar,
		}
	}
}

// FaultBound picks the maximal T the protocol's resilience permits.
func FaultBound(info download.Info, n int) int {
	switch {
	case info.Protocol == download.Crash1:
		return 1
	case info.FaultModel == "crash":
		return 3 * n / 4
	case info.FaultModel == "byzantine":
		return n/2 - 1
	default:
		return n / 2
	}
}

// gridShape is one (N, L) point of the committed fixture grid.
type gridShape struct{ n, l int }

var (
	gridShapes = []gridShape{{6, 256}, {10, 640}}
	gridSeeds  = []int64{1, 2}
	// flakyPlan is the seeded source fault plan of the per-protocol
	// flaky-source cases (virtual time units; des-only cells).
	flakyPlan = "fail=0.2,timeout=0.1,outage=1..3,seed=11"
	// The per-protocol mirror plans: an all-honest fleet (every query
	// should verify against the commitment) and a Byzantine-majority
	// fleet cycling the concrete misbehaviors (forged, truncated,
	// reordered proofs; wrong bits; stale snapshots) — fault-free cells
	// that run on every runtime column, pinning that Byzantine mirrors
	// cost fallbacks, never bits or correctness.
	honestMirrorPlan = "mirrors=4,leaf=32,seed=5"
	byzMirrorPlan    = "mirrors=5,byz=3,behavior=mixed,leaf=32,seed=5"
)

func derivedMsgBits(n, l int) int {
	b := l / n
	if b < 64 {
		b = 64
	}
	return b
}

func behaviorSlug(b download.FaultBehavior) string {
	if b == download.NoFaults {
		return "none"
	}
	return string(b)
}

// gridCases enumerates the corpus grid without expectations.
func gridCases() []Case {
	var cases []Case
	for _, info := range download.Protocols() {
		for _, shape := range gridShapes {
			t := FaultBound(info, shape.n)
			for _, behavior := range BehaviorsFor(info) {
				for _, seed := range gridSeeds {
					cases = append(cases, Case{
						Name: fmt.Sprintf("%s/n%dt%d/%s/s%d",
							info.Protocol, shape.n, t, behaviorSlug(behavior), seed),
						Protocol: string(info.Protocol),
						N:        shape.n, T: t, L: shape.l,
						MsgBits:  derivedMsgBits(shape.n, shape.l),
						Seed:     seed,
						Behavior: string(behavior),
					})
				}
			}
		}
		// One flaky-source cell per protocol: fault-free peers against a
		// failing source, pinning the retry/breaker counter stream.
		shape := gridShapes[0]
		t := FaultBound(info, shape.n)
		cases = append(cases, Case{
			Name:     fmt.Sprintf("%s/n%dt%d/flaky-source/s3", info.Protocol, shape.n, t),
			Protocol: string(info.Protocol),
			N:        shape.n, T: t, L: shape.l,
			MsgBits:      derivedMsgBits(shape.n, shape.l),
			Seed:         3,
			SourceFaults: flakyPlan,
		})
		// Two mirror cells per protocol: queries routed through an
		// untrusted mirror fleet, honest and Byzantine-majority. Both
		// are fault-free (mirrors cost fallbacks, not bits), so every
		// runtime column runs them and the Q pin holds wherever the
		// protocol's query pattern is schedule-invariant.
		for _, mp := range []struct{ slug, plan string }{
			{"mirrors-honest", honestMirrorPlan},
			{"mirrors-byzmajority", byzMirrorPlan},
		} {
			cases = append(cases, Case{
				Name:     fmt.Sprintf("%s/n%dt%d/%s/s5", info.Protocol, shape.n, t, mp.slug),
				Protocol: string(info.Protocol),
				N:        shape.n, T: t, L: shape.l,
				MsgBits: derivedMsgBits(shape.n, shape.l),
				Seed:    5,
				Mirrors: mp.plan,
			})
		}
	}
	// Two crash-recovery churn cells on the naive protocol (the one
	// protocol whose peers are schedule-independent, so the rejoin count
	// pins identically on every runtime column — including the socket
	// runtime, where the rejoined incarnation restarts from a durable
	// checkpoint): one peer that crashes at its first reply and rejoins,
	// and one that crashes for good.
	shape := gridShapes[0]
	for _, cc := range []struct{ slug, churn string }{
		{"churn-rejoin", "0:2:1"},
		{"churn-crash", "2:2:-1"},
	} {
		cases = append(cases, Case{
			Name:     fmt.Sprintf("naive/n%dt%d/%s/s9", shape.n, shape.n/2, cc.slug),
			Protocol: string(download.Naive),
			N:        shape.n, T: shape.n / 2, L: shape.l,
			MsgBits: derivedMsgBits(shape.n, shape.l),
			Seed:    9,
			Churn:   cc.churn,
		})
	}
	return cases
}

// generateResults runs the grid on the des runtime and fills in the
// expectations. Generation fails on an incorrect run or an envelope
// violation: the committed corpus must be green by construction.
func generateResults() (*Results, error) {
	cases := gridCases()
	for i := range cases {
		c := &cases[i]
		churn, err := download.ParseChurn(c.Churn)
		if err != nil {
			return nil, fmt.Errorf("conformance: generate %s: %w", c.Name, err)
		}
		rep, err := download.Run(download.Options{
			Protocol: download.Protocol(c.Protocol),
			N:        c.N, T: c.T, L: c.L, MsgBits: c.MsgBits,
			Seed:         c.Seed,
			Behavior:     download.FaultBehavior(c.Behavior),
			SourceFaults: c.SourceFaults,
			Mirrors:      c.Mirrors,
			Churn:        churn,
		})
		if err != nil {
			return nil, fmt.Errorf("conformance: generate %s: %w", c.Name, err)
		}
		if !rep.Correct {
			return nil, fmt.Errorf("conformance: generate %s: incorrect run: %v", c.Name, rep.Failures)
		}
		if c.Mirrors != "" && rep.MirrorHits+rep.FallbackQueries == 0 {
			// A mirror cell whose fleet never served or failed a single
			// query pins nothing; the plan seed needs retuning.
			return nil, fmt.Errorf("conformance: generate %s: degenerate mirror cell (no fleet traffic)", c.Name)
		}
		for _, cp := range churn {
			if cp.Downtime >= 0 && rep.Rejoins == 0 {
				// A rejoin cell where nothing rejoined pins nothing; the
				// crash point never fired.
				return nil, fmt.Errorf("conformance: generate %s: degenerate churn cell (no rejoin)", c.Name)
			}
		}
		if v := CheckEnvelope(download.Protocol(c.Protocol), c.N, c.T, c.L, c.MsgBits, rep); len(v) > 0 {
			return nil, fmt.Errorf("conformance: generate %s: %s (tighten the run or widen the documented envelope)",
				c.Name, strings.Join(v, "; "))
		}
		c.Expect = Expect{
			Correct:   rep.Correct,
			OutputFNV: HashBits(rep.Output),
			Q:         rep.Q,
			Msgs:      rep.Msgs,
			MsgBits:   rep.MsgBits,
			Events:    rep.Events,
			Time:      fmt.Sprintf("%.4f", rep.Time),

			SrcFailures:  rep.SourceFailures,
			SrcRetries:   rep.SourceRetries,
			BreakerOpens: rep.BreakerOpens,

			MirrorHits:      rep.MirrorHits,
			ProofFailures:   rep.ProofFailures,
			FallbackQueries: rep.FallbackQueries,

			Rejoins:     rep.Rejoins,
			WarmHitBits: rep.WarmHitBits,
		}
	}
	return &Results{Version: CorpusVersion, Cases: cases}, nil
}

// generateFrames encodes one representative message per wire tag with
// fixed seeded contents. The resulting bytes pin the wire format: a
// codec change that alters any encoding must bump CorpusVersion.
func generateFrames() (*Frames, error) {
	const frameL = 4096
	rng := rand.New(rand.NewSource(7))
	idxBits := segproto.IndexBits(frameL)
	set := intset.FromSorted([]int{1, 2, 3, 100, 200, 201})
	bits := func(n int) *bitarray.Array { return bitarray.Random(rng, n) }

	msgs := []struct {
		name string
		msg  sim.Message
	}{
		{"crashk-req1", &crashk.Req1{Phase: 3, Indices: set, IdxBits: idxBits}},
		{"crashk-resp1", &crashk.Resp1{Phase: 3, Indices: set, Values: bits(set.Len()), IdxBits: idxBits}},
		{"crashk-req2", &crashk.Req2{Phase: 2, IdxBits: idxBits, Items: []crashk.Req2Item{
			{Q: 5, Indices: intset.FromRange(0, 64)},
			{Q: 9, Indices: intset.FromSorted([]int{7, 9})},
		}}},
		{"crashk-resp2", &crashk.Resp2{Phase: 2, IdxBits: idxBits, Items: []crashk.Resp2Item{
			{Q: 5, MeNeither: true},
			{Q: 9, Indices: intset.FromSorted([]int{7, 9}), Values: bits(2)},
		}}},
		{"crashk-full", &crashk.Full{Values: bits(frameL)}},
		{"crash1-push", &crash1.Push{Phase: 1, Indices: intset.FromRange(64, 128), Values: bits(64), IdxBits: idxBits}},
		{"crash1-who", &crash1.WhoIsMissing{Phase: 1, Missing: 7}},
		{"crash1-reply-meneither", &crash1.MissingReply{Phase: 1, About: 7, MeNeither: true}},
		{"crash1-reply-values", &crash1.MissingReply{Phase: 2, About: 3, Indices: intset.FromRange(0, 10), Values: bits(10), IdxBits: idxBits}},
		{"committee-report", &committee.Report{Indices: []int{0, 5, 17, 4000}, Bits: bits(4), IdxBits: idxBits}},
		{"segproto-segvalue", &segproto.SegValue{Cycle: 2, Seg: 1, Values: bits(512), IdxBits: idxBits}},
		{"adversary-junk", &adversary.Junk{Bits: 777}},
	}
	out := &Frames{Version: CorpusVersion}
	for _, m := range msgs {
		raw, err := wire.Marshal(m.msg)
		if err != nil {
			return nil, fmt.Errorf("conformance: encode frame %s: %w", m.name, err)
		}
		out.Frames = append(out.Frames, Frame{Name: m.name, L: frameL, Hex: hex.EncodeToString(raw)})
	}

	// The mirror-tier socket frames (netrt codec): a ROOT commitment
	// push, a proof-carrying QPROOF reply over a seeded committed array,
	// a refused QPROOF, and the QUERYSRC verified fallback. Pinned as
	// full frames (length header included) so framing drift fails too.
	mrng := rand.New(rand.NewSource(21))
	mx := bitarray.Random(mrng, frameL)
	tree := merkle.Build(mx, 64)
	p := tree.Params()
	leafLo, leafHi := 3, 7
	rep := source.RangeReply{
		Root:   tree.Root(),
		LeafLo: leafLo, LeafHi: leafHi,
		Bits:  mx.Slice(leafLo*p.LeafBits, p.SpanBits(leafLo, leafHi)),
		Proof: tree.Prove(leafLo, leafHi),
	}
	qIdx := []int{200, 201, 300, 420}
	for _, f := range []struct {
		name string
		data []byte
	}{
		{"netrt-root", netrt.MarshalRootFrame(tree.Root())},
		{"netrt-qproof", netrt.MarshalProofFrame(9, 2, qIdx, rep)},
		{"netrt-qproof-refused", netrt.MarshalProofFrame(10, 2, qIdx, source.RangeReply{Refused: true})},
		{"netrt-querysrc", netrt.MarshalQuerySrcFrame(11, 2, qIdx)},
	} {
		out.Frames = append(out.Frames, Frame{
			Name: f.name, L: frameL, Hex: hex.EncodeToString(f.data), Codec: "netrt",
		})
	}
	return out, nil
}

// replayDir is where the dst replay regression corpus lives, relative
// to the fixture directory.
const replayDir = "../../dst/testdata/replays"

// generateReplays hashes every committed .dsr replay into a pinned
// reference.
func generateReplays(dir string) (*Replays, error) {
	entries, err := os.ReadDir(filepath.Join(dir, replayDir))
	if err != nil {
		return nil, fmt.Errorf("conformance: replay corpus: %w", err)
	}
	out := &Replays{Version: CorpusVersion}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".dsr") {
			continue
		}
		rel := filepath.ToSlash(filepath.Join(replayDir, e.Name()))
		data, err := os.ReadFile(filepath.Join(dir, replayDir, e.Name()))
		if err != nil {
			return nil, err
		}
		r, err := dst.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("conformance: replay %s: %w", e.Name(), err)
		}
		sum := sha256.Sum256(data)
		out.Replays = append(out.Replays, ReplayRef{
			File:      rel,
			SHA256:    hex.EncodeToString(sum[:]),
			Expect:    r.Expect,
			EventHash: r.EventHash,
		})
	}
	sort.Slice(out.Replays, func(i, j int) bool { return out.Replays[i].File < out.Replays[j].File })
	if len(out.Replays) == 0 {
		return nil, fmt.Errorf("conformance: no .dsr replays under %s", replayDir)
	}
	return out, nil
}

// DriftError reports that regeneration would change the meaning of
// already-committed fixtures while CorpusVersion is unchanged. The
// -update path refuses to write in that situation: semantic drift must
// be owned by bumping CorpusVersion first, which makes the change —
// and every fixture it invalidates — explicit in review.
type DriftError struct{ Drifts []string }

func (e *DriftError) Error() string {
	return fmt.Sprintf("conformance: refusing to overwrite fixtures: %d semantic drift(s) under unchanged CorpusVersion %d (bump CorpusVersion and re-run -update to accept):\n  %s",
		len(e.Drifts), CorpusVersion, strings.Join(e.Drifts, "\n  "))
}

// checkDrift compares freshly generated fixtures against the committed
// corpus. Added cases are corpus growth and always fine; changed or
// removed expectations are drift.
func checkDrift(old, fresh *Corpus) *DriftError {
	var drifts []string
	oldCases := make(map[string]Expect, len(old.Results.Cases))
	for _, c := range old.Results.Cases {
		oldCases[c.Name] = c.Expect
	}
	freshCases := make(map[string]Expect, len(fresh.Results.Cases))
	for _, c := range fresh.Results.Cases {
		freshCases[c.Name] = c.Expect
	}
	for _, c := range old.Results.Cases {
		got, ok := freshCases[c.Name]
		switch {
		case !ok:
			drifts = append(drifts, fmt.Sprintf("case %s: removed from grid", c.Name))
		case got != c.Expect:
			drifts = append(drifts, fmt.Sprintf("case %s: expectation changed:\n    old %+v\n    new %+v", c.Name, c.Expect, got))
		}
	}
	oldFrames := make(map[string]Frame, len(old.Frames.Frames))
	for _, f := range old.Frames.Frames {
		oldFrames[f.Name] = f
	}
	freshFrames := make(map[string]Frame, len(fresh.Frames.Frames))
	for _, f := range fresh.Frames.Frames {
		freshFrames[f.Name] = f
	}
	for name, f := range oldFrames {
		got, ok := freshFrames[name]
		switch {
		case !ok:
			drifts = append(drifts, fmt.Sprintf("frame %s: removed", name))
		case got != f:
			drifts = append(drifts, fmt.Sprintf("frame %s: encoding changed", name))
		}
	}
	oldReplays := make(map[string]ReplayRef, len(old.Replays.Replays))
	for _, r := range old.Replays.Replays {
		oldReplays[r.File] = r
	}
	for _, r := range old.Replays.Replays {
		got, ok := func() (ReplayRef, bool) {
			for _, f := range fresh.Replays.Replays {
				if f.File == r.File {
					return f, true
				}
			}
			return ReplayRef{}, false
		}()
		switch {
		case !ok:
			drifts = append(drifts, fmt.Sprintf("replay %s: removed", r.File))
		case got != r:
			drifts = append(drifts, fmt.Sprintf("replay %s: bytes or pinned outcome changed", r.File))
		}
	}
	if len(drifts) == 0 {
		return nil
	}
	return &DriftError{Drifts: drifts}
}

// Generate regenerates the fixture corpus in dir. When a corpus of the
// current CorpusVersion is already committed there, regeneration that
// would change its meaning fails with a *DriftError instead of writing;
// a committed corpus of a different (older) version is replaced
// wholesale, which is exactly what a version bump means.
func Generate(dir string) error {
	results, err := generateResults()
	if err != nil {
		return err
	}
	frames, err := generateFrames()
	if err != nil {
		return err
	}
	replays, err := generateReplays(dir)
	if err != nil {
		return err
	}
	fresh := &Corpus{Dir: dir, Results: *results, Frames: *frames, Replays: *replays}
	if old, err := Load(dir); err == nil {
		// Load succeeds only on a complete corpus of the current
		// version; anything else (missing files, older version) is a
		// legitimate full rewrite.
		if derr := checkDrift(old, fresh); derr != nil {
			return derr
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, v := range map[string]any{
		ResultsFile: results,
		FramesFile:  frames,
		ReplaysFile: replays,
	} {
		data, err := marshalCanonical(v)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
