package conformance

import (
	"fmt"
	"testing"
	"time"

	"repro/download"
)

// TestDesLiveEquivalence is the cross-runtime equivalence property over
// a seeded grid of small fault-free specs: the deterministic and the
// concurrent runtime must produce bit-identical outputs, and — for the
// protocols whose query pattern is schedule-invariant — the same query
// complexity Q. The crashk family's Q is asserted against its
// complexity envelope instead, because its reassignment stage reacts to
// message arrival order and so varies Q across schedules even without
// faults. This property is what makes the des-pinned fixture corpus a
// sound proxy for live behavior.
func TestDesLiveEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("live runtime grid in -short mode")
	}
	shapes := []struct{ n, l int }{{5, 128}, {7, 224}}
	seeds := []int64{1, 2}
	for _, info := range download.Protocols() {
		for _, sh := range shapes {
			tBound := FaultBound(info, sh.n)
			for _, seed := range seeds {
				name := fmt.Sprintf("%s/n%dL%d/s%d", info.Protocol, sh.n, sh.l, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					opts := download.Options{
						Protocol: info.Protocol,
						N:        sh.n, T: tBound, L: sh.l,
						Seed: seed,
					}
					des, err := download.Run(opts)
					if err != nil {
						t.Fatalf("des: %v", err)
					}
					lopts := opts
					lopts.Live = true
					lopts.LiveTimeScale = 200 * time.Microsecond
					liv, err := download.Run(lopts)
					if err != nil {
						t.Fatalf("live: %v", err)
					}
					if !des.Correct || !liv.Correct {
						t.Fatalf("correctness: des=%v live=%v %v", des.Correct, liv.Correct, liv.Failures)
					}
					if qScheduleInvariant[string(info.Protocol)] {
						if des.Q != liv.Q {
							t.Errorf("Q diverged: des=%d live=%d", des.Q, liv.Q)
						}
					} else {
						b := derivedMsgBits(sh.n, sh.l)
						if v := CheckEnvelope(info.Protocol, sh.n, tBound, sh.l, b, liv); len(v) > 0 {
							t.Errorf("live Q outside envelope: %v", v)
						}
					}
					if len(des.Output) != len(liv.Output) {
						t.Fatalf("output length diverged: des=%d live=%d", len(des.Output), len(liv.Output))
					}
					for i := range des.Output {
						if des.Output[i] != liv.Output[i] {
							t.Fatalf("output bit %d diverged: des=%v live=%v", i, des.Output[i], liv.Output[i])
						}
					}
				})
			}
		}
	}
}

// TestDesLiveEquivalenceUnderFaults extends the equivalence property
// into the fault planes the live runtime gained: a flaky source and a
// crash-rejoin churn peer must leave the outputs bit-identical across
// des and live (Q is schedule-dependent under recovery, so only
// correctness and the output bits are compared).
func TestDesLiveEquivalenceUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("live runtime in -short mode")
	}
	opts := download.Options{
		Protocol: download.Naive,
		N:        5, T: 2, L: 128,
		Seed:         4,
		SourceFaults: "fail=0.2,seed=1",
		Churn:        []download.ChurnPeer{{Peer: 0, CrashAfter: 2, Downtime: 2}},
	}
	des, err := download.Run(opts)
	if err != nil {
		t.Fatalf("des: %v", err)
	}
	lopts := opts
	lopts.Live = true
	lopts.LiveTimeScale = 200 * time.Microsecond
	liv, err := download.Run(lopts)
	if err != nil {
		t.Fatalf("live: %v", err)
	}
	if !des.Correct || !liv.Correct {
		t.Fatalf("correctness: des=%v live=%v %v", des.Correct, liv.Correct, liv.Failures)
	}
	if des.Rejoins != 1 || liv.Rejoins != 1 {
		t.Fatalf("rejoins: des=%d live=%d, want 1 on both", des.Rejoins, liv.Rejoins)
	}
	if len(des.Output) != len(liv.Output) {
		t.Fatalf("output length diverged: des=%d live=%d", len(des.Output), len(liv.Output))
	}
	for i := range des.Output {
		if des.Output[i] != liv.Output[i] {
			t.Fatalf("output bit %d diverged: des=%v live=%v", i, des.Output[i], liv.Output[i])
		}
	}
}
