package conformance

import (
	"fmt"

	"repro/download"
)

// Envelope bounds a protocol's per-run complexity. The bounds are the
// executable half of the per-protocol Q/M/T envelopes pinned in
// docs/SPEC.md: asymptotic theorems instantiated with explicit constants
// and roughly 2× headroom over the worst value observed across the
// conformance grid, so they catch gross cost regressions (a protocol
// silently degenerating toward naive, a message storm) without flaking
// on legitimate schedule variance. A violated envelope fails the cell —
// and the run — even when the output is correct.
type Envelope struct {
	// MaxQ bounds the query complexity Q (bits). Negative disables.
	MaxQ func(n, t, L, b int) int
	// MaxMsgs bounds the honest message complexity. Negative disables.
	MaxMsgs func(n, t, L, b int) int
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		return a
	}
	return (a + b - 1) / b
}

// Envelopes maps each protocol to its complexity envelope. It is a
// package variable so tests can substitute a deliberately violated
// envelope (the drconform exit-code regression test does).
var Envelopes = map[download.Protocol]Envelope{
	download.Naive: {
		// Q = L exactly (Thm 3.1/3.2 optimum at β ≥ 1/2); no messages.
		MaxQ:    func(n, t, L, b int) int { return L },
		MaxMsgs: func(n, t, L, b int) int { return 0 },
	},
	download.Crash1: {
		// Thm 2.3: L/n + L/(n(n−1)) fault-free; a crash at most doubles
		// a survivor's share. Messages: O(n) rounds of O(n) pushes, each
		// chunked into ≤ ceil(L/(n·b))+1 frames.
		MaxQ: func(n, t, L, b int) int {
			return 2*ceilDiv(L, n-1) + 2*ceilDiv(L, n*(n-1)) + 2*b
		},
		MaxMsgs: func(n, t, L, b int) int {
			return 16 * n * n * (ceilDiv(L, n*b) + 2)
		},
	},
	download.CrashK: {
		// Thm 2.13: O(L/n) for any β < 1; the constant scales with the
		// surviving fraction, so bound by the per-survivor share L/(n−t).
		// Messages grow with the crash count: every crash can trigger a
		// reassignment round of O(n²) chunked frames.
		MaxQ: func(n, t, L, b int) int {
			return 4*ceilDiv(L, n-t) + 2*b
		},
		MaxMsgs: func(n, t, L, b int) int {
			return 16 * n * n * (t + 2) * (ceilDiv(L, n*b) + 2)
		},
	},
	download.Committee: {
		// Thm 3.4: each bit is served by a (2t+1)-committee, so a peer
		// owns ≤ ceil(L/n) indices queried by 2t+1 members, and every
		// member reports its values to all n peers in chunked frames.
		MaxQ: func(n, t, L, b int) int {
			return (2*t+1)*ceilDiv(L, n) + b
		},
		MaxMsgs: func(n, t, L, b int) int {
			return 8 * n * n * (2*t + 2) * (ceilDiv(L, n*b) + 1)
		},
	},
	download.TwoCycle: {
		// Thm 3.7: Õ(L/n) whp at scale; at conformance-grid sizes the
		// fallback cycle dominates, so the sound universal bound is the
		// naive ceiling per cycle (2 cycles).
		MaxQ:    func(n, t, L, b int) int { return 2 * L },
		MaxMsgs: func(n, t, L, b int) int { return 4 * n * n * (ceilDiv(L, b) + 2) },
	},
	download.MultiCycle: {
		// Thm 3.12: expected Õ(L/n); bounded per cycle like twocycle
		// with O(log n) cycles.
		MaxQ:    func(n, t, L, b int) int { return 2 * L },
		MaxMsgs: func(n, t, L, b int) int { return 4 * n * n * (ceilDiv(L, b) + 2) },
	},
}

func init() {
	// CrashKFast shares CrashK's envelope: the fast stage-3 rule trades
	// time, not queries.
	Envelopes[download.CrashKFast] = Envelopes[download.CrashK]
}

// CheckEnvelope returns human-readable Q/M bound violations for one
// report (empty when within the envelope or no envelope is registered).
func CheckEnvelope(p download.Protocol, n, t, L, b int, rep *download.Report) []string {
	env, ok := Envelopes[p]
	if !ok {
		return nil
	}
	var violations []string
	if env.MaxQ != nil {
		if maxQ := env.MaxQ(n, t, L, b); maxQ >= 0 && rep.Q > maxQ {
			violations = append(violations,
				fmt.Sprintf("envelope: Q %d exceeds bound %d", rep.Q, maxQ))
		}
	}
	if env.MaxMsgs != nil {
		if maxM := env.MaxMsgs(n, t, L, b); maxM >= 0 && rep.Msgs > maxM {
			violations = append(violations,
				fmt.Sprintf("envelope: msgs %d exceeds bound %d", rep.Msgs, maxM))
		}
	}
	return violations
}
