// Package conformance pins the cross-runtime protocol contract: a
// versioned golden fixture corpus (result vectors, encoded wire frames,
// and references into the dst replay corpus) plus a runner that executes
// every protocol on every runtime against it and diffs the outcomes
// field by field.
//
// The canonical contract itself is prose — docs/SPEC.md — and this
// package is its executable half. Any new runtime (the planned
// state-machine peer core included) must produce the committed result
// vectors before it can claim to implement the protocols; any change to
// the wire format must reproduce the committed frame bytes; and any
// deliberate semantic change must bump CorpusVersion, because the
// regeneration path refuses to overwrite fixtures whose meaning drifted
// under an unchanged version (see gen.go).
//
// Layout of the corpus (internal/conformance/fixtures/):
//
//	results.json — per-case expected result vectors over a seeded grid
//	               of (protocol, N, t, behavior, seed, source plan)
//	frames.json  — hex-encoded wire frames, one per message type
//	replays.json — sha256-pinned references into the .dsr replay corpus
//
// Regenerate with:
//
//	go test ./internal/conformance -update
//
// which re-runs the grid on the des runtime, re-encodes the frames, and
// re-hashes the replay corpus — and fails instead of writing when the
// result differs semantically from the committed corpus while
// CorpusVersion is unchanged.
package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
)

// CorpusVersion is the fixture corpus format-and-semantics version.
// Bump it on any deliberate semantic change to a runtime, a protocol,
// the wire format, or the fixture schema; regeneration with -update
// refuses to rewrite changed expectations under an unchanged version.
//
// Version history:
//
//	1 — initial corpus: result grid, wire frames, replay pins.
//	2 — mirror tier: per-protocol mirror cases (honest and
//	    Byzantine-majority fleets) with MirrorHits/ProofFailures/
//	    FallbackQueries expectations, plus pinned netrt-codec frames
//	    for the ROOT/QPROOF/QUERYSRC mirror frames.
//	3 — crash-recovery churn: churn cases (Case.Churn schedules) with
//	    Rejoins/WarmHitBits expectations, run on every runtime column
//	    including a pinned churn-on-tcp row; the live column now runs
//	    flaky-source cases too (the live runtime gained the source
//	    resilience tier alongside churn).
const CorpusVersion = 3

// Fixture file names within a corpus directory.
const (
	ResultsFile = "results.json"
	FramesFile  = "frames.json"
	ReplaysFile = "replays.json"
)

// DefaultDir is the committed corpus location relative to the repo root
// (where `go run ./cmd/drconform` executes).
const DefaultDir = "internal/conformance/fixtures"

// Expect is the pinned result vector of one case, produced on the des
// runtime. Which fields other runtimes must reproduce is governed by
// the comparison mask (see fieldsFor in runner.go): output and
// correctness are runtime-invariant, Q is invariant on fault-free runs,
// and the remaining fields are deterministic on des only.
type Expect struct {
	// Correct reports every honest peer output X exactly.
	Correct bool `json:"correct"`
	// OutputFNV is the %016x FNV-1a hash of the honest output bits.
	OutputFNV string `json:"output_fnv"`
	// Q is the query complexity (max bits queried by an honest peer).
	Q int `json:"q"`
	// Msgs and MsgBits are the honest message complexity.
	Msgs    int `json:"msgs"`
	MsgBits int `json:"msg_bits"`
	// Events is the des event count; Time the virtual completion time.
	Events int    `json:"events"`
	Time   string `json:"time"` // %.4f
	// Source-resilience counters, nonzero only for flaky-source cases.
	SrcFailures  int `json:"src_failures,omitempty"`
	SrcRetries   int `json:"src_retries,omitempty"`
	BreakerOpens int `json:"breaker_opens,omitempty"`
	// Mirror-tier verdict counters, nonzero only for mirror cases
	// (des-deterministic; see fieldsFor).
	MirrorHits      int `json:"mirror_hits,omitempty"`
	ProofFailures   int `json:"proof_failures,omitempty"`
	FallbackQueries int `json:"fallback_queries,omitempty"`
	// Crash-recovery counters, nonzero only for churn cases. Rejoins is
	// runtime-invariant (the action clock is part of the contract), so
	// every column must reproduce it; WarmHitBits depends on which
	// deliveries landed before the crash and is pinned on des/sm only.
	Rejoins     int `json:"rejoins,omitempty"`
	WarmHitBits int `json:"warm_hit_bits,omitempty"`
}

// Case is one conformance cell: a fully specified execution plus its
// pinned outcome.
type Case struct {
	// Name is the stable identity of the case ("protocol/n6t2/liar/s1");
	// drift detection is keyed on it.
	Name     string `json:"name"`
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	T        int    `json:"t"`
	L        int    `json:"l"`
	MsgBits  int    `json:"msg_bits"`
	Seed     int64  `json:"seed"`
	// Behavior is the download.FaultBehavior name; empty = fault-free.
	Behavior string `json:"behavior,omitempty"`
	// SourceFaults is a source.ParsePlan plan for flaky-source cases.
	SourceFaults string `json:"source_faults,omitempty"`
	// Mirrors is a source.ParseMirrorPlan plan routing queries through
	// an untrusted mirror fleet (Merkle-verified, authoritative
	// fallback).
	Mirrors string `json:"mirrors,omitempty"`
	// Churn is a download.ParseChurn schedule of crash-recovery peers
	// ("peer:crashAfter:downtime,..."). Downtime is in runtime time
	// units (virtual on des/live, seconds on TCP); the pinned fields
	// are time-invariant, so the unit difference cannot drift a cell.
	Churn  string `json:"churn,omitempty"`
	Expect Expect `json:"expect"`
}

// FaultFree reports whether the case injects no peer or source faults —
// the regime where Q and the output are invariant across all runtimes.
// A mirror fleet deliberately does NOT count as a fault: Byzantine
// mirrors cost fallback latency, never bits, so Q stays pinned (only
// verified bits are charged, wherever they came from). Churn counts as
// a fault: a rejoined peer's replayed queries shift schedules.
func (c *Case) FaultFree() bool {
	return c.Behavior == "" && c.SourceFaults == "" && c.Churn == ""
}

// Results is the decoded results.json.
type Results struct {
	Version int    `json:"version"`
	Cases   []Case `json:"cases"`
}

// Frame is one pinned wire encoding: Hex must decode and re-encode to
// the identical bytes under the frame's codec — wire.Unmarshal/Marshal
// (with input length L) for protocol messages, or the netrt socket
// framing for the mirror-tier frames.
type Frame struct {
	Name string `json:"name"`
	L    int    `json:"l"`
	Hex  string `json:"hex"`
	// Codec selects the round-trip codec: "" (default) is the wire
	// message codec; "netrt" is the socket framing of the mirror-tier
	// ROOT/QPROOF/QUERYSRC frames (netrt.RoundTripMirrorFrame).
	Codec string `json:"codec,omitempty"`
}

// Frames is the decoded frames.json.
type Frames struct {
	Version int     `json:"version"`
	Frames  []Frame `json:"frames"`
}

// ReplayRef pins one file of the dst replay corpus byte-for-byte: the
// committed .dsr artifacts are part of the cross-runtime contract (they
// encode exact schedules any des-compatible engine must reproduce), so
// silent edits to them must fail conformance.
type ReplayRef struct {
	// File is the replay path relative to the corpus directory.
	File string `json:"file"`
	// SHA256 is the hex digest of the file bytes.
	SHA256 string `json:"sha256"`
	// Expect and EventHash mirror the replay's own pinned outcome for
	// human inspection; Verify re-checks them against the file.
	Expect    string `json:"expect"`
	EventHash string `json:"event_hash,omitempty"`
}

// Replays is the decoded replays.json.
type Replays struct {
	Version int         `json:"version"`
	Replays []ReplayRef `json:"replays"`
}

// Corpus is a fully loaded fixture directory.
type Corpus struct {
	Dir     string
	Results Results
	Frames  Frames
	Replays Replays
}

// marshalCanonical renders a fixture file in the corpus's canonical
// encoding: two-space indented JSON with a trailing newline. Committed
// fixtures must be byte-identical to this rendering of their decoded
// content (TestFixtureRoundTrip), so hand edits cannot drift the
// canonical form.
func marshalCanonical(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func loadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("conformance: parse %s: %w", path, err)
	}
	return nil
}

// Load reads a fixture corpus from dir and validates its version.
func Load(dir string) (*Corpus, error) {
	c := &Corpus{Dir: dir}
	if err := loadJSON(filepath.Join(dir, ResultsFile), &c.Results); err != nil {
		return nil, err
	}
	if err := loadJSON(filepath.Join(dir, FramesFile), &c.Frames); err != nil {
		return nil, err
	}
	if err := loadJSON(filepath.Join(dir, ReplaysFile), &c.Replays); err != nil {
		return nil, err
	}
	for name, v := range map[string]int{
		ResultsFile: c.Results.Version,
		FramesFile:  c.Frames.Version,
		ReplaysFile: c.Replays.Version,
	} {
		if v != CorpusVersion {
			return nil, fmt.Errorf("conformance: %s version %d, runner wants %d (regenerate with -update after bumping CorpusVersion)",
				name, v, CorpusVersion)
		}
	}
	if len(c.Results.Cases) == 0 {
		return nil, fmt.Errorf("conformance: %s has no cases", ResultsFile)
	}
	return c, nil
}

// HashBits is the corpus's output fingerprint: the %016x FNV-1a hash
// over the output bits, one byte per bit. Every runtime's honest output
// must hash to the case's OutputFNV.
func HashBits(bits []bool) string {
	h := fnv.New64a()
	buf := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			buf[i] = 1
		}
	}
	h.Write(buf)
	return fmt.Sprintf("%016x", h.Sum64())
}
