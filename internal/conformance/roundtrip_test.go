package conformance

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestFixtureRoundTrip decodes every committed fixture file and
// re-encodes it through the canonical marshaller: the bytes must be
// identical to what is on disk. This pins the canonical encoding (key
// order, indentation, trailing newline) so that -update regeneration
// and hand inspection always agree, and a fixture edited by hand in a
// non-canonical way is caught before it rots.
func TestFixtureRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		file   string
		decode func([]byte) (interface{}, error)
	}{
		{ResultsFile, func(b []byte) (interface{}, error) {
			var v Results
			err := strictUnmarshal(b, &v)
			return &v, err
		}},
		{FramesFile, func(b []byte) (interface{}, error) {
			var v Frames
			err := strictUnmarshal(b, &v)
			return &v, err
		}},
		{ReplaysFile, func(b []byte) (interface{}, error) {
			var v Replays
			err := strictUnmarshal(b, &v)
			return &v, err
		}},
	} {
		t.Run(tc.file, func(t *testing.T) {
			disk, err := os.ReadFile(filepath.Join(fixturesDir, tc.file))
			if err != nil {
				t.Fatal(err)
			}
			v, err := tc.decode(disk)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			enc, err := marshalCanonical(v)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(disk, enc) {
				t.Fatalf("%s is not canonically encoded: re-encoding differs from disk (len %d vs %d); regenerate with -update", tc.file, len(disk), len(enc))
			}
		})
	}
}

func strictUnmarshal(b []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// TestFrameFixturesRoundTrip verifies every committed wire frame
// decodes and re-encodes byte-identically, and that the pinned replay
// references still match the .dsr corpus on disk.
func TestFrameFixturesRoundTrip(t *testing.T) {
	corpus, err := Load(fixturesDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range VerifyFrames(&corpus.Frames) {
		t.Errorf("frame: %v", e)
	}
	for _, e := range VerifyReplays(corpus.Dir, &corpus.Replays) {
		t.Errorf("replay: %v", e)
	}
}
