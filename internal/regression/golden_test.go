// Package regression pins exact deterministic outcomes: the des runtime
// promises bit-for-bit reproducibility from a seed, so any change to
// these goldens signals a semantic change to the engine, the adversary
// stream, or a protocol — which must be deliberate and documented.
//
// Pinned values live in testdata/goldens.json. When a semantic change is
// intentional, regenerate with:
//
//	go test ./internal/regression -update
//
// and commit the diff (it is the reviewable record of the change).
package regression

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adversary"
	"repro/internal/des"
	"repro/internal/protocols/committee"
	"repro/internal/protocols/crash1"
	"repro/internal/protocols/crashk"
	"repro/internal/protocols/multicycle"
	"repro/internal/protocols/naive"
	"repro/internal/protocols/segproto"
	"repro/internal/protocols/twocycle"
	"repro/internal/sim"
	"repro/internal/source"
)

var update = flag.Bool("update", false, "rewrite testdata/goldens.json from the current engine")

// golden captures one pinned execution. The source-tier counters are
// omitted when zero, so pre-existing goldens keep their exact encoding.
type golden struct {
	Q      int    `json:"q"`
	Msgs   int    `json:"msgs"`
	Events int    `json:"events"`
	Time   string `json:"time"` // %.4f
	// Resilience counters, pinned only for flaky-source specs.
	SrcFailures  int `json:"src_failures,omitempty"`
	SrcRetries   int `json:"src_retries,omitempty"`
	BreakerOpens int `json:"breaker_opens,omitempty"`
	Rejoins      int `json:"rejoins,omitempty"`
}

// frozen is one named spec whose outcome is pinned.
type frozen struct {
	name string
	spec func() *sim.Spec
}

func freeze() []frozen {
	const seed = 1234
	mk := func(n, t, L int, factory func(sim.PeerID) sim.Peer, faults sim.FaultSpec) func() *sim.Spec {
		return func() *sim.Spec {
			return &sim.Spec{
				Config:  sim.Config{N: n, T: t, L: L, MsgBits: 128, Seed: seed},
				NewPeer: factory,
				Delays:  adversary.NewRandomUnit(seed),
				Faults:  faults,
			}
		}
	}
	crash := func(n, t int) sim.FaultSpec {
		f := adversary.SpreadFaulty(n, t)
		return sim.FaultSpec{Model: sim.FaultCrash, Faulty: f,
			Crash: adversary.NewCrashRandom(seed, f, 10*n)}
	}
	byz := func(n, t int, b func(sim.PeerID, *sim.Knowledge) sim.Peer) sim.FaultSpec {
		return sim.FaultSpec{Model: sim.FaultByzantine,
			Faulty: adversary.SpreadFaulty(n, t), NewByzantine: b}
	}
	// srcFaulted overlays a seeded source fault plan (and optionally one
	// crash-rejoin churn peer) on a spec: pins the full retry/backoff/
	// breaker event stream, not just the clean-path schedule.
	srcFaulted := func(spec func() *sim.Spec, plan string, churn ...sim.ChurnPeer) func() *sim.Spec {
		return func() *sim.Spec {
			s := spec()
			p, err := source.ParsePlan(plan)
			if err != nil {
				panic(err)
			}
			s.SourceFaults = p
			s.Faults.Churn = append(s.Faults.Churn, churn...)
			return s
		}
	}
	return []frozen{
		{"naive", mk(6, 2, 512, naive.New, byz(6, 2, adversary.NewSilent))},
		{"naive-flaky-source", srcFaulted(
			mk(6, 2, 512, naive.New, byz(6, 2, adversary.NewSilent)),
			"fail=0.2,timeout=0.1,outage=0..2,seed=11")},
		{"crashk-flaky-churn", srcFaulted(
			mk(12, 6, 2048, crashk.New, crash(12, 5)),
			"fail=0.15,outage=2..4,seed=13",
			sim.ChurnPeer{Peer: 11, CrashAfter: 3, Downtime: 2})},
		{"committee-flaky-source", srcFaulted(
			mk(9, 4, 540, committee.New, byz(9, 4, committee.NewLiar)),
			"fail=0.2,latency=0.3,seed=17")},
		{"naive-batched", mk(6, 2, 512, naive.NewBatched(64), byz(6, 2, adversary.NewSilent))},
		{"crash1", mk(8, 1, 1024, crash1.New, crash(8, 1))},
		{"crashk", mk(12, 6, 2048, crashk.New, crash(12, 6))},
		{"crashk-fast", mk(12, 6, 2048, crashk.NewFast, crash(12, 6))},
		{"committee", mk(9, 4, 540, committee.New, byz(9, 4, committee.NewLiar))},
		{"committee-equivocator", mk(9, 4, 540, committee.New, byz(9, 4, committee.NewEquivocator))},
		{"twocycle", mk(128, 16, 4096, twocycle.New, byz(128, 16, segproto.NewColludingLiar))},
		{"multicycle", mk(128, 16, 4096, multicycle.New, byz(128, 16, segproto.NewColludingLiar))},
	}
}

// capture projects a result onto the pinned fields.
func capture(res *sim.Result) golden {
	return golden{
		Q: res.Q, Msgs: res.Msgs, Events: res.Events,
		Time:        fmt.Sprintf("%.4f", res.Time),
		SrcFailures: res.SourceFailures, SrcRetries: res.SourceRetries,
		BreakerOpens: res.BreakerOpens, Rejoins: res.Rejoins,
	}
}

const goldenPath = "testdata/goldens.json"

func loadGoldens(t *testing.T) map[string]golden {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("load goldens (regenerate with -update): %v", err)
	}
	var pinned map[string]golden
	if err := json.Unmarshal(data, &pinned); err != nil {
		t.Fatalf("parse %s: %v", goldenPath, err)
	}
	return pinned
}

func TestGoldens(t *testing.T) {
	if *update {
		pinned := make(map[string]golden, len(freeze()))
		for _, g := range freeze() {
			res, err := des.New().Run(g.spec())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Correct {
				t.Fatalf("%s incorrect: %v", g.name, res.Failures)
			}
			pinned[g.name] = capture(res)
		}
		data, err := json.MarshalIndent(pinned, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d goldens", goldenPath, len(pinned))
		return
	}
	pinned := loadGoldens(t)
	for _, g := range freeze() {
		g := g
		t.Run(g.name, func(t *testing.T) {
			want, ok := pinned[g.name]
			if !ok {
				t.Fatalf("no pinned values for %s (regenerate with -update)", g.name)
			}
			res, err := des.New().Run(g.spec())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Correct {
				t.Fatalf("incorrect: %v", res)
			}
			got := capture(res)
			if got != want {
				t.Errorf("golden drift:\n got  %+v\n want %+v", got, want)
			}
		})
	}
	// Every pinned name must still have a spec; a silently dropped row
	// would otherwise pass forever.
	known := make(map[string]bool)
	for _, g := range freeze() {
		known[g.name] = true
	}
	for name := range pinned {
		if !known[name] {
			t.Errorf("pinned golden %q has no spec", name)
		}
	}
}
