// Package regression pins exact deterministic outcomes: the des runtime
// promises bit-for-bit reproducibility from a seed, so any change to
// these goldens signals a semantic change to the engine, the adversary
// stream, or a protocol — which must be deliberate and documented.
package regression

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/des"
	"repro/internal/protocols/committee"
	"repro/internal/protocols/crash1"
	"repro/internal/protocols/crashk"
	"repro/internal/protocols/multicycle"
	"repro/internal/protocols/naive"
	"repro/internal/protocols/segproto"
	"repro/internal/protocols/twocycle"
	"repro/internal/sim"
)

// golden captures one pinned execution.
type golden struct {
	name   string
	spec   func() *sim.Spec
	q      int
	msgs   int
	events int
	time   string // %.4f
}

func freeze() []golden {
	const seed = 1234
	mk := func(n, t, L int, factory func(sim.PeerID) sim.Peer, faults sim.FaultSpec) func() *sim.Spec {
		return func() *sim.Spec {
			return &sim.Spec{
				Config:  sim.Config{N: n, T: t, L: L, MsgBits: 128, Seed: seed},
				NewPeer: factory,
				Delays:  adversary.NewRandomUnit(seed),
				Faults:  faults,
			}
		}
	}
	crash := func(n, t int) sim.FaultSpec {
		f := adversary.SpreadFaulty(n, t)
		return sim.FaultSpec{Model: sim.FaultCrash, Faulty: f,
			Crash: adversary.NewCrashRandom(seed, f, 10*n)}
	}
	byz := func(n, t int, b func(sim.PeerID, *sim.Knowledge) sim.Peer) sim.FaultSpec {
		return sim.FaultSpec{Model: sim.FaultByzantine,
			Faulty: adversary.SpreadFaulty(n, t), NewByzantine: b}
	}
	return []golden{
		{name: "naive", spec: mk(6, 2, 512, naive.New, byz(6, 2, adversary.NewSilent))},
		{name: "crash1", spec: mk(8, 1, 1024, crash1.New, crash(8, 1))},
		{name: "crashk", spec: mk(12, 6, 2048, crashk.New, crash(12, 6))},
		{name: "crashk-fast", spec: mk(12, 6, 2048, crashk.NewFast, crash(12, 6))},
		{name: "committee", spec: mk(9, 4, 540, committee.New, byz(9, 4, committee.NewLiar))},
		{name: "twocycle", spec: mk(128, 16, 4096, twocycle.New, byz(128, 16, segproto.NewColludingLiar))},
		{name: "multicycle", spec: mk(128, 16, 4096, multicycle.New, byz(128, 16, segproto.NewColludingLiar))},
	}
}

// TestPrintGoldens regenerates the table to paste below when a semantic
// change is intentional: go test ./internal/regression -run Print -v
func TestPrintGoldens(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("run with -v to print")
	}
	for _, g := range freeze() {
		res, err := des.New().Run(g.spec())
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("{name: %q, q: %d, msgs: %d, events: %d, time: %q},",
			g.name, res.Q, res.Msgs, res.Events, fmt.Sprintf("%.4f", res.Time))
	}
}

// pinned values; regenerate with TestPrintGoldens when intentionally
// changing engine or protocol semantics.
var pinned = map[string]golden{
	"naive":       {q: 512, msgs: 0, events: 10, time: "1.5720"},
	"crash1":      {q: 128, msgs: 615, events: 91, time: "3.0884"},
	"crashk":      {q: 171, msgs: 2109, events: 389, time: "7.5832"},
	"crashk-fast": {q: 171, msgs: 1746, events: 319, time: "3.9958"},
	"committee":   {q: 540, msgs: 1880, events: 15, time: "1.0496"},
	"twocycle":    {q: 1025, msgs: 128016, events: 16371, time: "10.1124"},
	"multicycle":  {q: 1025, msgs: 369824, events: 30859, time: "24.5388"},
}

func TestGoldens(t *testing.T) {
	for _, g := range freeze() {
		g := g
		t.Run(g.name, func(t *testing.T) {
			want, ok := pinned[g.name]
			if !ok {
				t.Fatalf("no pinned values for %s", g.name)
			}
			res, err := des.New().Run(g.spec())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Correct {
				t.Fatalf("incorrect: %v", res)
			}
			got := golden{q: res.Q, msgs: res.Msgs, events: res.Events,
				time: fmt.Sprintf("%.4f", res.Time)}
			if got.q != want.q || got.msgs != want.msgs || got.events != want.events || got.time != want.time {
				t.Errorf("golden drift:\n got  q=%d msgs=%d events=%d time=%s\n want q=%d msgs=%d events=%d time=%s",
					got.q, got.msgs, got.events, got.time,
					want.q, want.msgs, want.events, want.time)
			}
		})
	}
}
