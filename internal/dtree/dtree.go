// Package dtree implements the decision trees of Protocol 3 ("Determine")
// from the paper. Given a set of mutually inconsistent candidate versions
// of one input segment (some possibly forged by Byzantine peers), the tree
// isolates, for each pair of conflicting versions, a separating index where
// they differ. Querying the trusted source at the internal-node indices —
// exactly |versions|−1 queries — eliminates every version that disagrees
// with the source, leaving a single consistent version. As long as the
// correct version is among the candidates, Determine returns it: Byzantine
// peers can add versions (raising the query cost by one each) but can
// never displace the truth, because the source is trusted.
package dtree

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/bitarray"
)

// Segment locates a contiguous bit range [Start, Start+Len) of the input
// array X.
type Segment struct {
	Start int
	Len   int
}

// End returns the exclusive end index.
func (s Segment) End() int { return s.Start + s.Len }

// node is a decision-tree node: internal nodes carry a separating index
// (relative to the segment), leaves carry a candidate version.
type node struct {
	sepIdx int // relative separating index; valid when leaf == nil
	leaf   *bitarray.Array
	zero   *node // child whose versions have bit sepIdx == 0
	one    *node
}

// Tree is a built decision tree for one segment.
type Tree struct {
	seg      Segment
	root     *node
	leaves   int
	internal int
}

// ErrNoVersions is returned when Build receives an empty candidate set.
var ErrNoVersions = errors.New("dtree: no candidate versions")

// Build constructs a decision tree for the candidate versions of segment
// seg. Duplicates are collapsed; every version must have length seg.Len.
// The tree has one leaf per distinct version and (#leaves − 1) internal
// nodes, matching the paper's query-cost bound.
func Build(seg Segment, versions []*bitarray.Array) (*Tree, error) {
	if len(versions) == 0 {
		return nil, ErrNoVersions
	}
	distinct := Dedupe(versions)
	for _, v := range distinct {
		if v.Len() != seg.Len {
			return nil, fmt.Errorf("dtree: version length %d != segment length %d", v.Len(), seg.Len)
		}
	}
	t := &Tree{seg: seg}
	t.root = t.build(distinct)
	return t, nil
}

func (t *Tree) build(versions []*bitarray.Array) *node {
	if len(versions) == 1 {
		t.leaves++
		return &node{leaf: versions[0]}
	}
	// Pick two versions and find their first separating index; since
	// versions are distinct and equal-length, one exists.
	d, err := versions[0].FirstDiff(versions[1])
	if err != nil || d < 0 {
		panic("dtree: indistinct versions after dedupe")
	}
	var zeros, ones []*bitarray.Array
	for _, v := range versions {
		if v.Get(d) {
			ones = append(ones, v)
		} else {
			zeros = append(zeros, v)
		}
	}
	t.internal++
	return &node{sepIdx: d, zero: t.build(zeros), one: t.build(ones)}
}

// Segment returns the segment the tree resolves.
func (t *Tree) Segment() Segment { return t.seg }

// Leaves returns the number of distinct candidate versions.
func (t *Tree) Leaves() int { return t.leaves }

// InternalCount returns the number of internal nodes — the query cost of
// resolving the tree.
func (t *Tree) InternalCount() int { return t.internal }

// InternalIndices returns the absolute input indices at the internal
// nodes, sorted and deduplicated. Querying the source at exactly these
// indices suffices to Resolve the tree; because the set is fixed once the
// tree is built, protocols can issue all queries in a single batch rather
// than walking the tree adaptively.
func (t *Tree) InternalIndices() []int {
	var rel []int
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || n.leaf != nil {
			return
		}
		rel = append(rel, n.sepIdx)
		walk(n.zero)
		walk(n.one)
	}
	walk(t.root)
	abs := make([]int, len(rel))
	for i, r := range rel {
		abs[i] = t.seg.Start + r
	}
	sort.Ints(abs)
	// Dedupe (different internal nodes may share a separating index).
	out := abs[:0]
	for i, v := range abs {
		if i == 0 || v != abs[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Resolve walks the tree using source bits supplied by lookup (absolute
// index into X) and returns the unique candidate consistent with every
// queried separating index. If the correct version was among the
// candidates, the result equals it.
func (t *Tree) Resolve(lookup func(absIdx int) bool) *bitarray.Array {
	n := t.root
	for n.leaf == nil {
		if lookup(t.seg.Start + n.sepIdx) {
			n = n.one
		} else {
			n = n.zero
		}
	}
	return n.leaf
}

// Dedupe returns the distinct arrays of versions, preserving first-seen
// order.
func Dedupe(versions []*bitarray.Array) []*bitarray.Array {
	seen := make(map[string]bool, len(versions))
	out := make([]*bitarray.Array, 0, len(versions))
	for _, v := range versions {
		k := string(v.Bytes())
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// Frequent returns the distinct versions appearing at least k times in the
// multiset, preserving first-seen order — the paper's k-frequent strings.
// Each version's multiplicity counts distinct senders; callers are
// responsible for counting each sender at most once.
func Frequent(versions []*bitarray.Array, k int) []*bitarray.Array {
	counts := make(map[string]int, len(versions))
	var order []string
	byKey := make(map[string]*bitarray.Array, len(versions))
	for _, v := range versions {
		key := string(v.Bytes())
		if counts[key] == 0 {
			order = append(order, key)
			byKey[key] = v
		}
		counts[key]++
	}
	var out []*bitarray.Array
	for _, key := range order {
		if counts[key] >= k {
			out = append(out, byKey[key])
		}
	}
	return out
}
