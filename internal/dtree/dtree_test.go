package dtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitarray"
)

func randVersions(rng *rand.Rand, segLen, count int) []*bitarray.Array {
	out := make([]*bitarray.Array, count)
	for i := range out {
		out[i] = bitarray.Random(rng, segLen)
	}
	return out
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Segment{0, 4}, nil); err == nil {
		t.Error("empty candidate set accepted")
	}
	bad := []*bitarray.Array{bitarray.New(3)}
	if _, err := Build(Segment{0, 4}, bad); err == nil {
		t.Error("wrong-length version accepted")
	}
}

func TestSingleVersion(t *testing.T) {
	v := bitarray.FromBools([]bool{true, false, true})
	tree, err := Build(Segment{10, 3}, []*bitarray.Array{v, v.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() != 1 || tree.InternalCount() != 0 {
		t.Fatalf("leaves=%d internal=%d, want 1/0", tree.Leaves(), tree.InternalCount())
	}
	got := tree.Resolve(func(int) bool { t.Fatal("no queries expected"); return false })
	if !got.Equal(v) {
		t.Fatal("wrong resolution")
	}
}

func TestTwoVersions(t *testing.T) {
	a := bitarray.FromBools([]bool{false, false, true, false})
	b := bitarray.FromBools([]bool{false, true, true, true})
	tree, err := Build(Segment{100, 4}, []*bitarray.Array{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Leaves() != 2 || tree.InternalCount() != 1 {
		t.Fatalf("leaves=%d internal=%d", tree.Leaves(), tree.InternalCount())
	}
	idx := tree.InternalIndices()
	if len(idx) != 1 || idx[0] != 101 {
		t.Fatalf("internal indices = %v, want [101] (first diff, absolute)", idx)
	}
	// Source says bit 101 of X is 1 → version b.
	got := tree.Resolve(func(abs int) bool { return abs == 101 })
	if !got.Equal(b) {
		t.Fatal("resolved wrong version")
	}
}

func TestInternalCountBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		segLen := 1 + rng.Intn(64)
		count := 1 + rng.Intn(20)
		versions := randVersions(rng, segLen, count)
		distinct := len(Dedupe(versions))
		tree, err := Build(Segment{0, segLen}, versions)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Leaves() != distinct {
			t.Fatalf("leaves = %d, distinct = %d", tree.Leaves(), distinct)
		}
		if tree.InternalCount() != distinct-1 {
			t.Fatalf("internal = %d, want leaves-1 = %d", tree.InternalCount(), distinct-1)
		}
	}
}

func TestResolveFindsTruthWhenPresent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 200; trial++ {
		segLen := 1 + rng.Intn(48)
		start := rng.Intn(100)
		truth := bitarray.Random(rng, segLen)
		versions := append(randVersions(rng, segLen, rng.Intn(10)), truth)
		tree, err := Build(Segment{start, segLen}, versions)
		if err != nil {
			t.Fatal(err)
		}
		queries := 0
		got := tree.Resolve(func(abs int) bool {
			queries++
			rel := abs - start
			if rel < 0 || rel >= segLen {
				t.Fatalf("query outside segment: %d", abs)
			}
			return truth.Get(rel)
		})
		if !got.Equal(truth) {
			t.Fatalf("trial %d: truth not recovered", trial)
		}
		if queries > tree.InternalCount() {
			t.Fatalf("used %d queries > %d internal nodes", queries, tree.InternalCount())
		}
	}
}

func TestInternalIndicesCoverResolvePath(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		segLen := 1 + rng.Intn(32)
		truth := bitarray.Random(rng, segLen)
		versions := append(randVersions(rng, segLen, 6), truth)
		tree, err := Build(Segment{50, segLen}, versions)
		if err != nil {
			t.Fatal(err)
		}
		allowed := make(map[int]bool)
		for _, x := range tree.InternalIndices() {
			allowed[x] = true
		}
		tree.Resolve(func(abs int) bool {
			if !allowed[abs] {
				t.Fatalf("resolve queried %d outside InternalIndices", abs)
			}
			return truth.Get(abs - 50)
		})
	}
}

func TestDedupe(t *testing.T) {
	a := bitarray.FromBools([]bool{true, false})
	b := bitarray.FromBools([]bool{true, false})
	c := bitarray.FromBools([]bool{false, false})
	got := Dedupe([]*bitarray.Array{a, b, c, a})
	if len(got) != 2 {
		t.Fatalf("Dedupe kept %d, want 2", len(got))
	}
	if got[0] != a || got[1] != c {
		t.Fatal("Dedupe did not preserve first-seen order")
	}
}

func TestFrequent(t *testing.T) {
	a := bitarray.FromBools([]bool{true})
	b := bitarray.FromBools([]bool{false})
	multiset := []*bitarray.Array{a, b, a.Clone(), a, b.Clone()}
	if got := Frequent(multiset, 3); len(got) != 1 || !got[0].Equal(a) {
		t.Fatalf("Frequent k=3 = %v", got)
	}
	if got := Frequent(multiset, 2); len(got) != 2 {
		t.Fatalf("Frequent k=2 kept %d", len(got))
	}
	if got := Frequent(multiset, 4); len(got) != 0 {
		t.Fatalf("Frequent k=4 kept %d", len(got))
	}
	if got := Frequent(nil, 1); len(got) != 0 {
		t.Fatalf("Frequent(nil) kept %d", len(got))
	}
}

func TestSegmentOfNesting(t *testing.T) {
	// Dyadic nesting: parent segment j at level m equals children 2j,
	// 2j+1 at level 2m — for awkward L too.
	for _, L := range []int{16, 100, 10007, 1 << 14} {
		for m := 1; m <= 32; m *= 2 {
			if 2*m > L {
				break
			}
			for j := 0; j < m; j++ {
				parent := SegmentOf(L, m, j)
				left := SegmentOf(L, 2*m, 2*j)
				right := SegmentOf(L, 2*m, 2*j+1)
				if left.Start != parent.Start || right.End() != parent.End() || left.End() != right.Start {
					t.Fatalf("L=%d m=%d j=%d: nesting broken: %+v %+v %+v",
						L, m, j, parent, left, right)
				}
			}
		}
	}
}

func TestSegmentOfPartition(t *testing.T) {
	for _, L := range []int{1, 5, 64, 999} {
		for _, m := range []int{1, 2, 3, 5, 64} {
			if m > L {
				continue
			}
			covered := 0
			for j := 0; j < m; j++ {
				s := SegmentOf(L, m, j)
				if s.Len <= 0 {
					t.Fatalf("L=%d m=%d j=%d: empty segment", L, m, j)
				}
				covered += s.Len
			}
			if covered != L {
				t.Fatalf("L=%d m=%d: covered %d", L, m, covered)
			}
		}
	}
}

// Property: the truth is always recovered when present, regardless of how
// many forged versions accompany it.
func TestQuickResolveTruth(t *testing.T) {
	f := func(seed int64, lenU, forgedU uint8) bool {
		segLen := int(lenU)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		truth := bitarray.Random(rng, segLen)
		versions := randVersions(rng, segLen, int(forgedU)%15)
		versions = append(versions, truth)
		tree, err := Build(Segment{0, segLen}, versions)
		if err != nil {
			return false
		}
		got := tree.Resolve(func(abs int) bool { return truth.Get(abs) })
		return got.Equal(truth)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
