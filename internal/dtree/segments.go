package dtree

// SegmentOf returns the j-th of m near-equal segments of an L-bit input:
// [⌊jL/m⌋, ⌊(j+1)L/m⌋). The floor form guarantees exact nesting across
// dyadic refinements: if m' = 2m, then SegmentOf(L, m, j) is precisely the
// union of SegmentOf(L, m', 2j) and SegmentOf(L, m', 2j+1) — the property
// the multi-cycle protocol's parent/child segment relation relies on.
func SegmentOf(L, m, j int) Segment {
	lo := j * L / m
	hi := (j + 1) * L / m
	return Segment{Start: lo, Len: hi - lo}
}
