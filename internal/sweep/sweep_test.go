package sweep_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/protocols/committee"
	"repro/internal/protocols/crash1"
	"repro/internal/protocols/crashk"
	"repro/internal/protocols/naive"
	"repro/internal/protocols/segproto"
	"repro/internal/protocols/twocycle"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/sweep"
)

// referenceSpecs returns one representative spec per protocol family,
// covering failure-free, crash, and Byzantine executions.
func referenceSpecs(seed int64) map[string]func() *sim.Spec {
	mk := func(n, t, L int, factory func(sim.PeerID) sim.Peer, faults sim.FaultSpec) func() *sim.Spec {
		return func() *sim.Spec {
			return &sim.Spec{
				Config:  sim.Config{N: n, T: t, L: L, MsgBits: 128, Seed: seed},
				NewPeer: factory,
				Delays:  adversary.NewRandomUnit(seed + 5),
				Faults:  faults,
			}
		}
	}
	crash := func(n, t int) sim.FaultSpec {
		f := adversary.SpreadFaulty(n, t)
		return sim.FaultSpec{Model: sim.FaultCrash, Faulty: f,
			Crash: adversary.NewCrashRandom(seed, f, 10*n)}
	}
	byz := func(n, t int, b func(sim.PeerID, *sim.Knowledge) sim.Peer) sim.FaultSpec {
		return sim.FaultSpec{Model: sim.FaultByzantine,
			Faulty: adversary.SpreadFaulty(n, t), NewByzantine: b}
	}
	return map[string]func() *sim.Spec{
		"naive":     mk(6, 0, 256, naive.New, sim.FaultSpec{}),
		"crash1":    mk(8, 1, 1024, crash1.New, crash(8, 1)),
		"crashk":    mk(12, 6, 2048, crashk.NewFast, crash(12, 6)),
		"committee": mk(9, 4, 540, committee.New, byz(9, 4, committee.NewLiar)),
		"twocycle":  mk(32, 8, 1024, twocycle.New, byz(32, 8, segproto.NewColludingLiar)),
	}
}

// TestParallelMatchesSerial is the determinism regression gate: each
// reference spec runs twice serially and once under the parallel driver,
// and every field of every sim.Result — per-peer stats, aggregates, and
// the robustness counters — must be identical. Run under -race in `make
// bench-ci` to double as the driver's data-race check.
func TestParallelMatchesSerial(t *testing.T) {
	specs := referenceSpecs(42)
	var cells1, cells2, cellsP []sweep.Cell
	var names []string
	for name, mk := range specs {
		names = append(names, name)
		cells1 = append(cells1, sweep.Cell{Name: name, Spec: mk()})
		cells2 = append(cells2, sweep.Cell{Name: name, Spec: mk()})
		cellsP = append(cellsP, sweep.Cell{Name: name, Spec: mk()})
	}
	serial1, err := sweep.Run(cells1, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial2, err := sweep.Run(cells2, sweep.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sweep.Run(cellsP, sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if !serial1[i].Correct {
			t.Fatalf("%s: reference run incorrect: %v", name, serial1[i].Failures)
		}
		if !reflect.DeepEqual(serial1[i], serial2[i]) {
			t.Errorf("%s: two serial runs differ:\n run1 %v\n run2 %v", name, serial1[i], serial2[i])
		}
		if !reflect.DeepEqual(serial1[i], parallel[i]) {
			t.Errorf("%s: parallel result differs from serial:\n serial   %v\n parallel %v", name, serial1[i], parallel[i])
		}
	}
}

// TestSeedsHelper checks cell construction and result ordering for a
// many-seed sweep under maximum parallelism.
func TestSeedsHelper(t *testing.T) {
	mk := func(seed int64) *sim.Spec {
		return &sim.Spec{
			Config:  sim.Config{N: 8, T: 1, L: 256, MsgBits: 64, Seed: seed},
			NewPeer: crash1.New,
			Delays:  adversary.NewRandomUnit(seed),
			Faults: sim.FaultSpec{Model: sim.FaultCrash,
				Faulty: []sim.PeerID{3}, Crash: &adversary.CrashAll{Point: 5}},
		}
	}
	seeds := make([]int64, 16)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	cells := sweep.Seeds("crash1", mk, seeds)
	if cells[3].Name != "crash1/seed=3" {
		t.Fatalf("cell name: %q", cells[3].Name)
	}
	serial, err := sweep.Run(sweep.Seeds("crash1", mk, seeds), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sweep.Run(cells, sweep.Options{Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("seed %d: parallel differs from serial", i)
		}
	}
}

// TestRejectsSharedObservers pins the guard against racing a shared
// Trace/Observer from worker goroutines.
func TestRejectsSharedObservers(t *testing.T) {
	mk := referenceSpecs(7)["naive"]
	spec := mk()
	spec.Observer = observerFunc(func(sim.ObservedEvent) {})
	cells := []sweep.Cell{{Name: "obs", Spec: spec}, {Name: "plain", Spec: mk()}}
	if _, err := sweep.Run(cells, sweep.Options{Workers: 2}); err == nil {
		t.Fatal("parallel run with an Observer must be rejected")
	}
	cells = cells[:1]
	// Serial runs with observers stay allowed.
	if _, err := sweep.Run(cells, sweep.Options{Workers: 1}); err != nil {
		t.Fatalf("serial run with an Observer failed: %v", err)
	}
}

type observerFunc func(sim.ObservedEvent)

func (f observerFunc) OnEvent(ev sim.ObservedEvent) { f(ev) }

// TestErrorNamesCell checks invalid specs surface the failing cell.
func TestErrorNamesCell(t *testing.T) {
	bad := &sim.Spec{Config: sim.Config{N: 1, T: 0, L: 8, MsgBits: 8}}
	_, err := sweep.Run([]sweep.Cell{{Name: "bad-cell", Spec: bad}}, sweep.Options{})
	if err == nil {
		t.Fatal("expected error for invalid spec")
	}
	if !strings.Contains(err.Error(), `"bad-cell"`) {
		t.Fatalf("error %q does not name the cell", err)
	}
}

// TestSourceFaultedParallelMatchesSerial is the source-tier determinism
// property: a sweep whose cells run against a faulty source — retries,
// breaker trips, outage parking, and one crash-rejoin churn peer — must
// still be byte-identical between the serial and the parallel driver,
// because every fault decision is a pure function of (plan seed, peer,
// ordinal, attempt) and the churn schedule lives in virtual time.
func TestSourceFaultedParallelMatchesSerial(t *testing.T) {
	plan, err := source.ParsePlan("fail=0.25,timeout=0.1,latency=0.4,outage=1..2.5,seed=13")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) *sim.Spec {
		return &sim.Spec{
			Config:       sim.Config{N: 8, T: 2, L: 512, MsgBits: 64, Seed: seed},
			NewPeer:      naive.NewBatched(64),
			Delays:       adversary.NewRandomUnit(seed + 3),
			Faults:       sim.FaultSpec{Churn: []sim.ChurnPeer{{Peer: 0, CrashAfter: 6, Downtime: 3}}},
			SourceFaults: plan,
		}
	}
	seeds := []int64{1, 2, 3, 4, 5, 6}
	serial, err := sweep.Run(sweep.Seeds("srcfault", mk, seeds), sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sweep.Run(sweep.Seeds("srcfault", mk, seeds), sweep.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sawFailures := false
	for i, seed := range seeds {
		if !serial[i].Correct {
			t.Fatalf("seed=%d: source-faulted run incorrect: %v", seed, serial[i].Failures)
		}
		if serial[i].SourceFailures > 0 {
			sawFailures = true
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("seed=%d: parallel result differs from serial:\n serial   %v\n parallel %v",
				seed, serial[i], parallel[i])
		}
	}
	if !sawFailures {
		t.Fatal("property fixture degenerate: no cell recorded a source failure")
	}
}
