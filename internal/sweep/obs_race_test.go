package sweep_test

import (
	"runtime"
	"strconv"
	"testing"

	"repro/internal/adversary"
	"repro/internal/obs"
	"repro/internal/protocols/crashk"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// TestSharedRegistryUnderParallelSweep exercises the obs registry's
// concurrency contract the way drbench does: many sweep workers running
// des cells that all increment the same metric families — some into the
// same series (run-global counters), some creating fresh ones (per-label
// series). Under `go test -race` this doubles as the registry's data-race
// gate; without -race it still checks that no increment is lost.
func TestSharedRegistryUnderParallelSweep(t *testing.T) {
	reg := obs.New()
	const runs = 12
	mk := func(seed int64) *sim.Spec {
		return &sim.Spec{
			Config:   sim.Config{N: 5, T: 0, L: 256, MsgBits: 64, Seed: seed},
			NewPeer:  crashk.New,
			Delays:   adversary.NewRandomUnit(seed),
			Metrics:  reg,
			Timeline: obs.NewTimeline(), // per-cell timeline; also race-safe shared, but keep spans readable
			Label:    "crashk-" + strconv.FormatInt(seed%3, 10),
		}
	}
	seeds := make([]int64, runs)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	cells := sweep.Seeds("crashk", mk, seeds)
	results, err := sweep.Run(cells, sweep.Options{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		t.Fatal(err)
	}

	wantEvents, wantBits := 0, 0
	for _, res := range results {
		wantEvents += res.Events
		for _, ps := range res.PerPeer {
			wantBits += ps.QueryBits
		}
	}
	snap := reg.Snapshot()
	if s, ok := snap.Series("dr_sim_events_total", nil); !ok || int(s.Value) != wantEvents {
		t.Errorf("shared event counter %v (ok=%v), serial sum %d", s.Value, ok, wantEvents)
	}
	gotBits := 0
	for _, m := range snap.Metrics {
		if m.Name != "dr_sim_query_bits_total" {
			continue
		}
		for _, s := range m.Series {
			gotBits += int(s.Value)
		}
	}
	if gotBits != wantBits {
		t.Errorf("query-bit series sum %d, serial sum %d", gotBits, wantBits)
	}
}
