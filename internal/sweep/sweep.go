// Package sweep runs batches of independent simulation cells — (seed,
// spec) points of a parameter sweep — on a bounded worker pool. Each cell
// is a self-contained deterministic execution, so the only thing
// parallelism could change is scheduling across cells; results are
// collected by cell index and are therefore byte-identical to a serial
// run (enforced by TestParallelMatchesSerial, which also runs under the
// race detector in `make bench-ci`).
//
// The driver is opt-in: Options.Workers ≤ 1 (the zero value) runs the
// cells serially on the calling goroutine with no extra machinery.
package sweep

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/des"
	"repro/internal/sim"
)

// Cell is one independent execution of a sweep.
type Cell struct {
	// Name labels the cell in errors (e.g. "crashk/seed=3").
	Name string
	// Spec is the execution to run. The spec must not share mutable state
	// (Trace writers, Observers) with any other cell when Workers > 1.
	// A shared *obs.Registry or *obs.Timeline is fine: both are
	// concurrency-safe by design, so cells of a parallel sweep may
	// accumulate into one registry (see obs_race_test.go).
	Spec *sim.Spec
}

// Options configures a sweep run.
type Options struct {
	// Workers bounds the number of concurrent executions. Values ≤ 1 run
	// serially. The bound is taken as given (not clamped to NumCPU), so
	// behavior is identical on every machine; callers wanting hardware
	// scaling pass runtime.GOMAXPROCS(0).
	Workers int
	// NewRuntime constructs the runtime for one cell. Each cell gets its
	// own instance, so runtimes need not be safe for concurrent use. Nil
	// selects the deterministic des runtime.
	NewRuntime func() sim.Runtime
}

// Seeds builds one cell per seed from a spec constructor — the common
// shape of a benchmark sweep.
func Seeds(name string, mk func(seed int64) *sim.Spec, seeds []int64) []Cell {
	cells := make([]Cell, len(seeds))
	for i, s := range seeds {
		cells[i] = Cell{Name: fmt.Sprintf("%s/seed=%d", name, s), Spec: mk(s)}
	}
	return cells
}

// Run executes every cell and returns the results in cell order. The
// first failing cell aborts the sweep with its error; remaining in-flight
// cells finish but their results are discarded.
func Run(cells []Cell, opts Options) ([]*sim.Result, error) {
	newRT := opts.NewRuntime
	if newRT == nil {
		newRT = func() sim.Runtime { return des.New() }
	}
	workers := opts.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	results := make([]*sim.Result, len(cells))
	if workers <= 1 {
		for i, c := range cells {
			res, err := newRT().Run(c.Spec)
			if err != nil {
				return nil, fmt.Errorf("sweep: cell %q: %w", c.Name, err)
			}
			results[i] = res
		}
		return results, nil
	}
	// A spec-level Trace writer or Observer would be invoked from worker
	// goroutines concurrently; reject rather than race.
	for _, c := range cells {
		if c.Spec != nil && (c.Spec.Trace != nil || c.Spec.Observer != nil) {
			return nil, fmt.Errorf("sweep: cell %q has a Trace/Observer; tracing requires Workers ≤ 1", c.Name)
		}
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				// A fresh runtime per cell, exactly like the serial path.
				res, err := newRT().Run(cells[i].Spec)
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("sweep: cell %q: %w", cells[i].Name, err)
					})
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
