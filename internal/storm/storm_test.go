package storm

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/download"
	"repro/internal/dst"
	"repro/internal/sim"
)

// pinnedReplayPath is the committed acceptance storm's .dsr, living in
// the dst replay corpus so the conformance tier pins its bytes (sha256
// in replays.json) and the dst regression walker verifies it.
const pinnedReplayPath = "../dst/testdata/replays/" + PinnedReplayFile

// TestGenerateDeterministic pins the generator contract: the composed
// spec is a pure function of (parameters, storm seed). The committed
// .dsr depends on this — a drifting draw order silently changes every
// storm in the matrix.
func TestGenerateDeterministic(t *testing.T) {
	for _, proto := range []download.Protocol{download.Naive, download.CrashK, download.Committee} {
		for seed := int64(1); seed <= 20; seed++ {
			a := Generate(proto, 6, 3, 512, 128, seed)
			b := Generate(proto, 6, 3, 512, 128, seed)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s seed %d: Generate not deterministic:\n%+v\n%+v", proto, seed, a, b)
			}
		}
	}
}

// TestGenerateRespectsFaultBudget checks every composition keeps
// absent + churn inside t and every churn peer distinct and in range.
func TestGenerateRespectsFaultBudget(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		spec := Generate(download.CrashK, 6, 4, 512, 128, seed)
		seen := make(map[int]bool)
		faulty := len(spec.Absent)
		for _, c := range spec.Churn {
			if c.Peer < 0 || c.Peer >= spec.N {
				t.Fatalf("seed %d: churn peer %d out of range", seed, c.Peer)
			}
			if seen[c.Peer] {
				t.Fatalf("seed %d: duplicate churn peer %d", seed, c.Peer)
			}
			seen[c.Peer] = true
			faulty++
		}
		for _, p := range spec.Absent {
			if seen[p] {
				t.Fatalf("seed %d: peer %d both absent and churning", seed, p)
			}
		}
		if faulty > spec.T {
			t.Fatalf("seed %d: %d faulty peers exceeds t=%d", seed, faulty, spec.T)
		}
	}
}

// TestCheckNegativeControls rigs outcomes and requires Check to flag
// them: a checker that cannot detect a wrong result gates nothing.
func TestCheckNegativeControls(t *testing.T) {
	spec := Generate(download.Naive, 6, 3, 256, 64, PinnedStormSeed)
	if spec.Rejoins() == 0 || spec.Mirrors == "" {
		t.Fatalf("pinned spec lost its planes: %+v", spec)
	}
	healthy := func() *sim.Result {
		res := &sim.Result{
			PerPeer:            make([]sim.PeerStats, spec.N),
			Correct:            true,
			Q:                  spec.L,
			Rejoins:            spec.Rejoins(),
			CheckpointSaves:    spec.Rejoins(),
			CheckpointRestores: spec.Rejoins(),
		}
		for _, c := range spec.Churn {
			if c.Downtime >= 0 {
				ps := &res.PerPeer[c.Peer]
				ps.Crashed, ps.Rejoined, ps.Terminated = true, true, true
			}
		}
		return res
	}
	if vs := Check(spec, healthy(), nil); len(vs) != 0 {
		t.Fatalf("healthy result flagged: %v", vs)
	}

	cases := []struct {
		name      string
		mutate    func(*sim.Result)
		invariant string
	}{
		{"wrong output", func(r *sim.Result) { r.Correct = false; r.Failures = []string{"peer 0 wrong"} }, "correctness"},
		{"q overflow", func(r *sim.Result) { r.Q = 10 * spec.L }, "envelope"},
		{"lost rejoin", func(r *sim.Result) {
			r.Rejoins = 0
			for i := range r.PerPeer {
				r.PerPeer[i].Rejoined = false
			}
		}, "rejoin"},
		{"cold restore", func(r *sim.Result) { r.CheckpointRestores = 0 }, "checkpoint"},
		{"swallowed proof failure", func(r *sim.Result) { r.ProofFailures = 3; r.FallbackQueries = 0 }, "mirror"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := healthy()
			tc.mutate(res)
			vs := Check(spec, res, nil)
			found := false
			for _, v := range vs {
				if v.Invariant == tc.invariant {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %q violation reported: %v", tc.invariant, vs)
			}
		})
	}

	t.Run("timeout", func(t *testing.T) {
		vs := Check(spec, nil, os.ErrDeadlineExceeded)
		if len(vs) != 1 || vs[0].Invariant != "termination" {
			t.Fatalf("want one termination violation, got %v", vs)
		}
	})
}

// TestStormPinnedSeedOverTCP is the acceptance storm on real sockets:
// the pinned composition — source outage with transient failures, a
// Byzantine-majority mirror fleet, one crash-rejoin churn peer, one
// crash-for-good churn peer, an absent peer, network chaos, and a hub
// shard bounce — must be survived with zero invariant violations, the
// rejoining peer restored from its durable checkpoint.
func TestStormPinnedSeedOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("socket storm in -short mode")
	}
	spec := Generate(download.Naive, 6, 3, 256, 64, PinnedStormSeed)
	if spec.Rejoins() == 0 || spec.Mirrors == "" || spec.Bounce == nil || len(spec.Absent) == 0 {
		t.Fatalf("pinned storm no longer composes every plane: %+v", spec)
	}
	res, err := Run(spec, RunOptions{Timeout: 60 * time.Second, CheckpointDir: t.TempDir()})
	if vs := Check(spec, res, err); len(vs) != 0 {
		t.Fatalf("pinned storm violated: %v", vs)
	}
	if res.ShardRestarts != 1 {
		t.Errorf("ShardRestarts = %d, want 1 (the bounce)", res.ShardRestarts)
	}
	if res.CheckpointRestores < 1 {
		t.Errorf("CheckpointRestores = %d, want >= 1", res.CheckpointRestores)
	}
}

// TestStormReplayPinned pins the committed acceptance .dsr byte for
// byte: rebuilding it from scratch — Generate at the pinned seed, the
// des bridge, a recorded schedule at the pinned schedule seed — must
// reproduce the committed file exactly, and the committed file must
// verify (correct outcome, matching event hash). Regenerate with
// STORM_GENERATE=1 after a deliberate engine or generator change (then
// bump conformance.CorpusVersion: replays.json pins the new sha256).
func TestStormReplayPinned(t *testing.T) {
	rec, err := PinnedReplay()
	if err != nil {
		t.Fatal(err)
	}
	want, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if os.Getenv("STORM_GENERATE") != "" {
		if err := os.WriteFile(pinnedReplayPath, want, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", pinnedReplayPath, len(want))
		return
	}
	got, err := os.ReadFile(pinnedReplayPath)
	if err != nil {
		t.Fatalf("committed storm replay missing (regenerate with STORM_GENERATE=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("committed storm replay is not byte-identical to a fresh recording:\ncommitted %d bytes, rebuilt %d bytes\n(an intentional generator/engine change needs STORM_GENERATE=1 + a CorpusVersion bump)",
			len(got), len(want))
	}
	committed, err := dst.Load(pinnedReplayPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Verify(committed); err != nil {
		t.Fatalf("committed storm replay fails verification: %v", err)
	}
}

// TestRecordFinding exercises the failure-artifact path end to end with
// a socket-only violation: the des bridge passes, so the artifact pins
// the composition as an ExpectCorrect control plus a JSON finding.
func TestRecordFinding(t *testing.T) {
	spec := Generate(download.Naive, 6, 3, 256, 64, PinnedStormSeed)
	dir := t.TempDir()
	vs := []Violation{{Invariant: "termination", Detail: "synthetic socket-only failure"}}
	f, err := RecordFinding(spec, vs, dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if f.DesReproduced {
		t.Error("healthy composition reported as des-reproduced")
	}
	if f.ReplayFile == "" {
		t.Fatal("no .dsr written for a registry protocol")
	}
	r, err := dst.Load(f.ReplayFile)
	if err != nil {
		t.Fatal(err)
	}
	if r.Expect != dst.ExpectCorrect {
		t.Errorf("socket-only finding pinned as %q, want %q", r.Expect, dst.ExpectCorrect)
	}
	if _, err := dst.Verify(r); err != nil {
		t.Errorf("finding replay fails verification: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "storm-naive-s3.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back Finding
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Spec, spec) || len(back.Violations) != 1 {
		t.Fatalf("finding JSON does not round-trip: %+v", back)
	}

	t.Run("no des port", func(t *testing.T) {
		fast := Generate(download.CrashKFast, 6, 4, 256, 64, 1)
		f, err := RecordFinding(fast, vs, t.TempDir(), false)
		if err != nil {
			t.Fatal(err)
		}
		if f.ReplayFile != "" {
			t.Error("crashk-fast has no des port but a .dsr was written")
		}
	})
}
