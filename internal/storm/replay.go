// The dst bridge: a failing storm is re-recorded on the deterministic
// engine so the failure becomes a minimized, committed .dsr artifact
// instead of a flaky socket log. The bridge carries every plane the des
// engine models — crash-from-start peers, churn, the source fault plan
// (in step units), the mirror fleet — and drops the socket-only network
// plane (drops, flaps, partitions, shard bounces), which the replay's
// Note records.
package storm

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dst"
)

// marshalFinding renders a finding artifact as indented JSON.
func marshalFinding(f *Finding) ([]byte, error) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// PinnedStormSeed is the master seed of the committed acceptance storm
// (see TestStormReplayPinned): chosen so the naive composition draws
// every plane at once — rejoining churn, a source outage with transient
// failures, a Byzantine-majority mirror fleet, network chaos, and a
// sharded hub. The .dsr recorded from its des bridge is pinned
// byte-for-byte in internal/dst/testdata/replays.
const (
	PinnedStormSeed    int64 = 3
	pinnedScheduleSeed int64 = 42
	PinnedReplayFile         = "naive-storm-composed.dsr"
)

// DesReplay lowers a storm spec onto the deterministic engine as an
// unrecorded dst replay. It fails for protocols outside the dst registry
// (crashk-fast has no des choice-engine port).
func DesReplay(spec Spec) (*dst.Replay, error) {
	if _, err := dst.LookupProtocol(spec.Protocol); err != nil {
		return nil, err
	}
	r := &dst.Replay{
		Version:  dst.Version,
		Protocol: spec.Protocol,
		N:        spec.N, T: spec.T, L: spec.L, MsgBits: spec.MsgBits,
		Seed:       spec.Seed,
		SourcePlan: spec.SourceFaultsDes,
		MirrorPlan: spec.Mirrors,
	}
	for _, p := range spec.Absent {
		r.Fault = dst.FaultCrash
		r.Faulty = append(r.Faulty, p)
		r.CrashPoints = append(r.CrashPoints, dst.CrashPoint{Peer: p, Point: 0})
	}
	for _, c := range spec.Churn {
		r.Churn = append(r.Churn, dst.ChurnPoint{
			Peer: c.Peer, Point: c.CrashAfter, Rejoin: c.Downtime >= 0,
		})
	}
	return r, nil
}

// Finding is one failing storm's artifact bundle.
type Finding struct {
	Spec       Spec        `json:"spec"`
	Violations []Violation `json:"violations"`
	// ReplayFile is the .dsr path when the des bridge produced one
	// (empty for protocols outside the dst registry).
	ReplayFile string `json:"replay_file,omitempty"`
	// DesReproduced reports whether the des re-execution of the bridged
	// composition also violated (then the .dsr is a shrunk failure
	// reproduction); false pins the schedule as ExpectCorrect evidence
	// that the failure is socket-only.
	DesReproduced bool `json:"des_reproduced"`
}

// RecordFinding writes a failing storm into dir: the spec + violations
// as JSON, and — when the protocol has a des port — the bridged replay
// as a .dsr, shrunk to minimal form when the des engine reproduces a
// violation. Returns the finding with artifact paths filled in.
func RecordFinding(spec Spec, violations []Violation, dir string, shrink bool) (*Finding, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f := &Finding{Spec: spec, Violations: violations}
	base := fmt.Sprintf("storm-%s-s%d", spec.Protocol, spec.StormSeed)

	r, err := DesReplay(spec)
	if err == nil {
		rec, out, rerr := dst.Record(r, spec.StormSeed)
		switch {
		case rerr != nil:
			return nil, fmt.Errorf("storm: record des bridge: %w", rerr)
		case out.Violation():
			f.DesReproduced = true
			rec.Expect = dst.ExpectViolation
			if shrink {
				shrunk, _, serr := dst.Shrink(rec, dst.ShrinkOptions{})
				if serr == nil {
					rec = shrunk
				}
			}
			rec.Note = fmt.Sprintf("Shrunk des reproduction of storm seed %d on %s "+
				"(socket-only network plane dropped): %v", spec.StormSeed, spec.Protocol, violations)
		default:
			rec.Expect = dst.ExpectCorrect
			rec.Note = fmt.Sprintf("Storm seed %d on %s violated on the socket runtime (%v) "+
				"but its des bridge passes: the failure is socket-only (network plane, "+
				"resume handshake, or checkpoint store). Pinned as a correct-schedule control.",
				spec.StormSeed, spec.Protocol, violations)
		}
		f.ReplayFile = filepath.Join(dir, base+".dsr")
		if err := rec.Save(f.ReplayFile); err != nil {
			return nil, err
		}
	}

	data, err := marshalFinding(f)
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, base+".json"), data, 0o644); err != nil {
		return nil, err
	}
	return f, nil
}

// PinnedReplay rebuilds the committed acceptance storm's replay from
// scratch: the canonical naive spec from PinnedStormSeed, bridged to des
// and recorded under the pinned schedule seed. Regeneration and the
// byte-identity test both call this, so the committed .dsr stays a pure
// function of (Generate, the des engine, the pinned seeds).
func PinnedReplay() (*dst.Replay, error) {
	spec := Generate(pinnedProtocol, pinnedN, pinnedT, pinnedL, pinnedB, PinnedStormSeed)
	r, err := DesReplay(spec)
	if err != nil {
		return nil, err
	}
	rec, out, err := dst.Record(r, pinnedScheduleSeed)
	if err != nil {
		return nil, err
	}
	if !out.Result.Correct {
		return nil, fmt.Errorf("storm: pinned storm composition no longer passes on des: %v", out.Result.Failures)
	}
	rec.Expect = dst.ExpectCorrect
	rec.Note = "Acceptance storm for the crash-recovery tier: the seeded composed-fault " +
		"storm (source outage with transient failures, Byzantine-majority mirror fleet, " +
		"crash-rejoin churn) bridged onto the deterministic engine and pinned " +
		"byte-for-byte. The same composition runs over real sockets with the network " +
		"chaos plane added in TestStormPinnedSeedOverTCP and in the drstorm CI gate."
	return rec, nil
}

// The pinned storm's model parameters (naive at the conformance grid's
// small shape, t at naive's n/2 fault bound).
const (
	pinnedN = 6
	pinnedT = 3
	pinnedL = 256
	pinnedB = 64
)

const pinnedProtocol = "naive"
