// Package storm composes every fault plane the repo implements into one
// seeded nemesis schedule and checks the model's invariants under it.
//
// The isolated robustness suites each exercise one adversary at a time:
// drchaos injects network faults, the source tier injects outages, the
// mirror tier injects forged proofs, and the churn suites crash and
// rejoin peers. A storm layers all of them onto a single socket-runtime
// execution — seeded network chaos × a flaky source × a
// Byzantine-majority mirror fleet × crash-recovery churn × a hub shard
// bounce — because real deployments compose failures, and the paper's
// guarantees must survive the composition, not just each summand.
//
// Everything is a pure function of one storm seed: Generate derives the
// composed Spec, Run executes it on real TCP sockets, and Check holds
// the outcome to the invariants that define "survived":
//
//   - every honest peer terminates with output == X;
//   - Q stays within the protocol's complexity envelope (unverified
//     mirror bits or double-charged retries would push it out);
//   - every rejoining churn peer restarts warm from its durable
//     checkpoint and still terminates; peers that crash for good are
//     accounted inside the fault budget t;
//   - rejected mirror proofs were re-fetched from the authoritative
//     tier, never silently accepted.
//
// A failing storm is bridged onto the deterministic engine (see
// replay.go): the same composition minus the socket-only network plane
// is re-recorded as a dst replay, minimized by the shrinker, and saved
// as a .dsr artifact.
package storm

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/download"
	"repro/internal/conformance"
	"repro/internal/netrt"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/source"
)

// Horizon scaling for the source fault plan's time-valued fields. The
// same dimensionless draws are rendered in both units so the socket run
// and its des reproduction see the same storm shape: seconds on TCP
// (outages a few hundred ms into a run lasting a couple of seconds),
// delivered-event steps on the deterministic engine.
const (
	tcpHorizonSeconds = 1.0
	desHorizonSteps   = 100.0
)

// ChurnEntry is one crash-recovery churn peer of a storm: the peer
// crashes itself after CrashAfter protocol actions and, when Downtime is
// non-negative, rejoins after roughly Downtime seconds, restoring warm
// state from its durable checkpoint. Downtime < 0 crashes for good.
type ChurnEntry struct {
	Peer       int     `json:"peer"`
	CrashAfter int     `json:"crash_after"`
	Downtime   float64 `json:"downtime"`
}

// NetPlan is the storm's network-chaos plane, lowered onto a
// netrt.FaultPlan at run time. All fields are hub-side link faults that
// never count toward the fault budget t.
type NetPlan struct {
	Drop      float64 `json:"drop"`
	Dup       float64 `json:"dup"`
	Reorder   float64 `json:"reorder"`
	DelayMs   int     `json:"delay_ms"`
	Flaps     int     `json:"flaps"`
	Partition bool    `json:"partition,omitempty"`
}

// Bounce schedules one hub listener-shard kill/restart during the storm.
type Bounce struct {
	Shard   int `json:"shard"`
	AfterMs int `json:"after_ms"`
	DownMs  int `json:"down_ms"`
}

// Spec is one fully derived storm: the DR-model parameters plus a value
// for every fault plane. It is JSON-serializable so a failing storm's
// exact composition lands in the artifact directory next to its .dsr.
type Spec struct {
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	T        int    `json:"t"`
	L        int    `json:"l"`
	MsgBits  int    `json:"msg_bits"`
	// Seed drives the input array and peer randomness (sim.Config.Seed);
	// StormSeed is the master seed the whole composition was derived
	// from. Two specs with equal StormSeed and parameters are identical.
	Seed      int64 `json:"seed"`
	StormSeed int64 `json:"storm_seed"`
	// Absent peers crash before starting and count toward T.
	Absent []int `json:"absent,omitempty"`
	// Churn peers crash mid-run (and maybe rejoin); they count toward T.
	Churn []ChurnEntry `json:"churn,omitempty"`
	// SourceFaults / SourceFaultsDes are the same source fault draws
	// rendered in socket units (seconds) and des units (steps).
	SourceFaults    string `json:"source_faults,omitempty"`
	SourceFaultsDes string `json:"source_faults_des,omitempty"`
	// Mirrors, when non-empty, fronts the source with an untrusted
	// (usually Byzantine-majority) mirror fleet.
	Mirrors string `json:"mirrors,omitempty"`
	// Net is the socket-only network chaos plane.
	Net NetPlan `json:"net"`
	// Shards and Bounce shape the hub: with Shards > 1 the storm may
	// kill and restart one listener shard mid-run.
	Shards int     `json:"shards"`
	Bounce *Bounce `json:"bounce,omitempty"`
}

// Rejoins returns the number of churn peers expected to rejoin.
func (s *Spec) Rejoins() int {
	n := 0
	for _, c := range s.Churn {
		if c.Downtime >= 0 {
			n++
		}
	}
	return n
}

// rejoinSafe reports whether rejoining churn is in the storm vocabulary
// for a protocol. A rejoined peer restarts its protocol from scratch
// with only its persisted source bits warm; that always converges for
// the source-only naive protocol, but a mid-run restart of a
// message-coupled protocol may never terminate (its peers have moved
// past the rounds it replays), and the runtime waits for rejoining
// peers. Those protocols get crash-for-good churn instead, which any
// crash- or Byzantine-tolerant protocol must absorb within t.
func rejoinSafe(p download.Protocol) bool { return p == download.Naive }

// Generate derives the composed storm for one master seed. The draw
// order below is fixed and load-bearing: the pinned storm replay is
// byte-identical across regenerations only while equal (parameters,
// stormSeed) keep producing the identical Spec.
func Generate(proto download.Protocol, n, t, l, b int, stormSeed int64) Spec {
	rng := rand.New(rand.NewSource(stormSeed))
	spec := Spec{
		Protocol: string(proto),
		N:        n, T: t, L: l, MsgBits: b,
		StormSeed: stormSeed,
		Seed:      1 + rng.Int63n(1<<31),
	}

	// Crash plane: churn inside the fault budget, at most two peers so
	// small grids keep an honest majority of survivors.
	budget := t
	if budget > 0 {
		count := 1 + rng.Intn(min(budget, 2))
		perm := rng.Perm(n)
		for i := 0; i < count; i++ {
			ce := ChurnEntry{Peer: perm[i], CrashAfter: 2 + rng.Intn(5), Downtime: -1}
			if rejoinSafe(proto) && rng.Float64() < 0.75 {
				// A rejoining peer must actually crash for the rejoin
				// invariant to be checkable, so pin its crash point below
				// the protocol's action count: naive's action clock runs
				// init, query, delivery — CrashAfter=2 crashes it
				// deterministically at the first reply delivery on every
				// runtime (the same point the conformance churn rows pin).
				ce.CrashAfter = 2
				ce.Downtime = 0.1 + 0.3*rng.Float64()
			}
			spec.Churn = append(spec.Churn, ce)
		}
		budget -= count
		// Maybe spend one more budget slot on a peer that never starts.
		if budget > 0 && rng.Float64() < 0.5 {
			spec.Absent = append(spec.Absent, perm[count])
		}
	}

	// Source plane: always on — transient failures plus one outage
	// window, rendered in both time units from the same draws.
	failRate := 0.05 + 0.2*rng.Float64()
	oStart := 0.3 * rng.Float64()
	oEnd := oStart + 0.1 + 0.3*rng.Float64()
	srcSeed := 1 + rng.Int63n(1000)
	spec.SourceFaults = fmt.Sprintf("fail=%.2f,outage=%.2f..%.2f,seed=%d",
		failRate, oStart*tcpHorizonSeconds, oEnd*tcpHorizonSeconds, srcSeed)
	spec.SourceFaultsDes = fmt.Sprintf("fail=%.2f,outage=%.0f..%.0f,seed=%d",
		failRate, oStart*desHorizonSteps, oEnd*desHorizonSteps, srcSeed)

	// Mirror plane: usually a Byzantine-majority fleet cycling the
	// concrete misbehaviors; proofs must keep wrong bits out of Q.
	if rng.Float64() < 0.6 {
		spec.Mirrors = fmt.Sprintf("mirrors=5,byz=3,behavior=mixed,seed=%d", 1+rng.Int63n(1000))
	}

	// Network plane: drops, duplicates, jitter with reordering, a few
	// connection flaps, and (on grids big enough) one healed partition.
	spec.Net = NetPlan{
		Drop:    0.15 * rng.Float64(),
		Dup:     0.15 * rng.Float64(),
		Reorder: 0.10 * rng.Float64(),
		DelayMs: 1 + rng.Intn(3),
		Flaps:   rng.Intn(3),
	}
	if n >= 4 && rng.Float64() < 0.5 {
		spec.Net.Partition = true
	}

	// Hub plane: maybe shard the listener and bounce one shard mid-run.
	spec.Shards = 1 + rng.Intn(2)
	if spec.Shards > 1 && rng.Float64() < 0.5 {
		spec.Bounce = &Bounce{
			Shard:   rng.Intn(spec.Shards),
			AfterMs: 30 + rng.Intn(50),
			DownMs:  100 + rng.Intn(150),
		}
	}
	return spec
}

// RunOptions tunes storm execution.
type RunOptions struct {
	// Timeout bounds the socket run (default 30s).
	Timeout time.Duration
	// CheckpointDir overrides the temp dir used for durable checkpoints
	// when the storm has rejoining churn.
	CheckpointDir string
	// Metrics/Timeline optionally observe the run (drstorm -obs).
	Metrics  *obs.Registry
	Timeline *obs.Timeline
}

// Run executes the storm on the real-socket runtime. It builds the full
// netrt configuration — fault plan, source plan, mirror fleet, churn
// schedule, shard bounce — and returns the runtime's result. The error
// return carries config or termination failures (e.g. *netrt.TimeoutError
// with honest peers still running); invariant checking is Check's job so
// a caller can hold a partially failed run to the full list.
func Run(spec Spec, opts RunOptions) (*sim.Result, error) {
	factory, err := download.Protocol(spec.Protocol).Factory()
	if err != nil {
		return nil, err
	}
	srcPlan, err := source.ParsePlan(spec.SourceFaults)
	if err != nil {
		return nil, fmt.Errorf("storm: source plan: %w", err)
	}
	mirPlan, err := source.ParseMirrorPlan(spec.Mirrors)
	if err != nil {
		return nil, fmt.Errorf("storm: mirror plan: %w", err)
	}

	plan := &netrt.FaultPlan{
		Seed:    spec.Seed * 7919,
		Drop:    spec.Net.Drop,
		Dup:     spec.Net.Dup,
		Delay:   time.Duration(spec.Net.DelayMs) * time.Millisecond,
		Reorder: spec.Net.Reorder,
	}
	if spec.Net.Flaps > 0 {
		plan.Flaps = make(map[sim.PeerID][]time.Duration)
		for k := 0; k < spec.Net.Flaps; k++ {
			p := sim.PeerID(k % spec.N)
			at := 20*time.Millisecond + time.Duration(k)*60*time.Millisecond
			plan.Flaps[p] = append(plan.Flaps[p], at)
		}
	}
	if spec.Net.Partition && spec.N >= 4 {
		plan.Partitions = []netrt.Partition{{
			A:     []sim.PeerID{0, 1},
			B:     []sim.PeerID{2, 3},
			Start: 40 * time.Millisecond,
			Heal:  400 * time.Millisecond,
		}}
	}

	var absent []sim.PeerID
	for _, p := range spec.Absent {
		absent = append(absent, sim.PeerID(p))
	}
	var churn []sim.ChurnPeer
	for _, c := range spec.Churn {
		churn = append(churn, sim.ChurnPeer{
			Peer: sim.PeerID(c.Peer), CrashAfter: c.CrashAfter, Downtime: c.Downtime,
		})
	}
	ckptDir := opts.CheckpointDir
	if ckptDir == "" && spec.Rejoins() > 0 {
		dir, err := os.MkdirTemp("", "drstorm-ckpt")
		if err != nil {
			return nil, fmt.Errorf("storm: checkpoint dir: %w", err)
		}
		defer os.RemoveAll(dir)
		ckptDir = dir
	}
	var bounces []netrt.ShardBounce
	if spec.Bounce != nil {
		bounces = []netrt.ShardBounce{{
			Shard: spec.Bounce.Shard,
			After: time.Duration(spec.Bounce.AfterMs) * time.Millisecond,
			Down:  time.Duration(spec.Bounce.DownMs) * time.Millisecond,
		}}
	}

	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return netrt.Run(netrt.Config{
		N: spec.N, T: spec.T, L: spec.L, MsgBits: spec.MsgBits,
		Seed:          spec.Seed,
		NewPeer:       factory,
		Absent:        absent,
		Churn:         churn,
		CheckpointDir: ckptDir,
		ShardBounces:  bounces,
		Shards:        spec.Shards,
		Faults:        plan,
		SourceFaults:  srcPlan,
		Mirrors:       mirPlan,
		Timeout:       timeout,
		Resilience: netrt.Resilience{
			QueryTimeout: 250 * time.Millisecond,
			RTO:          60 * time.Millisecond,
		},
		Metrics:  opts.Metrics,
		Timeline: opts.Timeline,
		Label:    spec.Protocol,
	})
}

// Violation is one breached storm invariant.
type Violation struct {
	// Invariant names the breached property: "termination",
	// "correctness", "envelope", "rejoin", "checkpoint", "mirror".
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Check holds one storm outcome to the invariants. runErr is Run's error
// return (a timeout with honest peers still running is itself a
// termination violation); res may be non-nil alongside a non-nil error.
// An empty slice means the storm was survived.
func Check(spec Spec, res *sim.Result, runErr error) []Violation {
	var vs []Violation
	if runErr != nil {
		vs = append(vs, Violation{"termination", runErr.Error()})
	}
	if res == nil {
		return vs
	}
	if !res.Correct {
		detail := "honest peer output differs from X"
		if len(res.Failures) > 0 {
			detail = fmt.Sprintf("%v", res.Failures)
		}
		vs = append(vs, Violation{"correctness", detail})
	}

	// Complexity envelope: unverified mirror bits or double-charged
	// retries would inflate Q past the per-protocol bound.
	rep := &download.Report{Q: res.Q, Msgs: res.Msgs}
	for _, v := range conformance.CheckEnvelope(download.Protocol(spec.Protocol),
		spec.N, spec.T, spec.L, spec.MsgBits, rep) {
		vs = append(vs, Violation{"envelope", v})
	}

	// Crash-recovery accounting: every rejoining churn peer must have
	// crashed, come back, and finished; its warm state must have come
	// from a durable checkpoint restore (the socket runtime's churn
	// peers have no in-memory fallback across incarnations).
	wantRejoins := spec.Rejoins()
	if res.Rejoins != wantRejoins {
		vs = append(vs, Violation{"rejoin",
			fmt.Sprintf("%d rejoins, want %d", res.Rejoins, wantRejoins)})
	}
	for _, c := range spec.Churn {
		if c.Downtime < 0 || c.Peer >= len(res.PerPeer) {
			continue
		}
		ps := &res.PerPeer[c.Peer]
		if !ps.Crashed || !ps.Rejoined || !ps.Terminated {
			vs = append(vs, Violation{"rejoin",
				fmt.Sprintf("churn peer %d: crashed=%v rejoined=%v terminated=%v",
					c.Peer, ps.Crashed, ps.Rejoined, ps.Terminated)})
		}
	}
	if wantRejoins > 0 && (res.CheckpointSaves < wantRejoins || res.CheckpointRestores < wantRejoins) {
		vs = append(vs, Violation{"checkpoint",
			fmt.Sprintf("saves=%d restores=%d, want >= %d of each",
				res.CheckpointSaves, res.CheckpointRestores, wantRejoins)})
	}

	// Mirror accounting: a rejected proof must have been re-fetched from
	// the authoritative tier — a failure that produced no fallback means
	// a peer either stalled on it or accepted unverified bits.
	if spec.Mirrors != "" && res.ProofFailures > 0 && res.FallbackQueries == 0 {
		vs = append(vs, Violation{"mirror",
			fmt.Sprintf("%d proof failures but no authoritative fallback queries", res.ProofFailures)})
	}
	return vs
}
