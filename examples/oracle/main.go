// Oracle: the paper's Section 4 application. A blockchain-oracle network
// must publish price feeds drawn from external data sources, some of
// which lie. Classical oracle designs (Chainlink OCR, DORA) have every
// node read every cell from every source; Theorem 4.2 replaces those
// reads with one Download execution per source while preserving the
// honest-range (ODD) guarantee.
//
// The savings depend on the network's fault model, mirroring Table 1:
// a crash-fault network runs the optimal deterministic Download
// (Q = O(L/n), savings ≈ n), while a Byzantine-minority network runs the
// committee protocol (Q ≈ 2βL, savings ≈ 1/(2β), flat in n — the
// randomized protocols recover the ≈ n/polylog factor once the network
// is a few hundred nodes).
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/oracle"
	"repro/internal/protocols/committee"
	"repro/internal/protocols/crashk"
	"repro/internal/sim"
)

func main() {
	fmt.Println("5 sources (2 Byzantine outliers), 32 cells of 64 bits each")
	fmt.Println()
	for _, nodes := range []int{8, 16, 32, 64} {
		cfg := &oracle.Config{
			Nodes:        nodes,
			NodeFaults:   nodes / 4,
			SourceFaults: 2,
			Cells:        32,
			Seed:         42,
		}
		feeds, err := oracle.GenerateFeeds(cfg)
		if err != nil {
			log.Fatal(err)
		}
		base, err := oracle.RunBaseline(cfg, feeds)
		if err != nil {
			log.Fatal(err)
		}
		faulty := adversary.SpreadFaulty(cfg.Nodes, cfg.NodeFaults)

		crash, err := oracle.RunDownload(cfg, feeds, oracle.NewRunner(cfg, crashk.New,
			sim.FaultSpec{
				Model: sim.FaultCrash, Faulty: faulty,
				Crash: adversary.NewCrashRandom(cfg.Seed, faulty, 50*nodes),
			}, adversary.NewRandomUnit(cfg.Seed)))
		if err != nil {
			log.Fatal(err)
		}
		byz, err := oracle.RunDownload(cfg, feeds, oracle.NewRunner(cfg, committee.New,
			sim.FaultSpec{
				Model: sim.FaultByzantine, Faulty: faulty,
				NewByzantine: committee.NewLiar,
			}, adversary.NewRandomUnit(cfg.Seed+1)))
		if err != nil {
			log.Fatal(err)
		}
		if !crash.ODDHolds || !byz.ODDHolds || !crash.AllAgree || !byz.AllAgree {
			log.Fatalf("n=%d: ODD/agreement violated", nodes)
		}
		fmt.Printf("n=%2d  baseline %6d bits/node | crash-net download %5d (%4.1fx) | byz-net download %5d (%4.1fx)\n",
			nodes, base.PerNodeQueryBits,
			crash.PerNodeQueryBits, float64(base.PerNodeQueryBits)/float64(crash.PerNodeQueryBits),
			byz.PerNodeQueryBits, float64(base.PerNodeQueryBits)/float64(byz.PerNodeQueryBits))
	}
	fmt.Println("\ncrash-network savings grow ≈ linearly in n (optimal Q = O(L/n), Thm 2.13);")
	fmt.Println("byzantine-network savings are ≈ 1/(2β) with the deterministic committee (Thm 3.4).")
}
