// Quickstart: download a 4096-bit array across 16 peers while 4 of them
// crash mid-protocol, using the paper's main deterministic protocol
// (Algorithm 2 / Theorem 2.13), in five lines of configuration.
package main

import (
	"fmt"
	"log"

	"repro/download"
)

func main() {
	rep, err := download.Run(download.Options{
		Protocol: download.CrashK, // deterministic, any β < 1
		N:        16,              // peers
		T:        4,               // fault bound
		L:        4096,            // input bits
		Seed:     1,
		Behavior: download.CrashRandom, // crash all 4 at random points
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("correct: %v\n", rep.Correct)
	fmt.Printf("every nonfaulty peer learned all %d bits\n", len(rep.Output))
	fmt.Printf("query complexity: %d bits/peer (naive would be %d; optimal is ~L/n = %d)\n",
		rep.Q, 4096, 4096/16)
	fmt.Printf("messages: %d, virtual time: %.1f\n", rep.Msgs, rep.Time)
}
