// Byzantine: the minority-vs-majority dichotomy of Section 3.
//
// Part 1 (β < 1/2): the deterministic committee protocol (Thm 3.4) and
// the randomized 2-cycle protocol (Thm 3.7) both survive colluding liars;
// the randomized one is far cheaper at scale.
//
// Part 2 (β ≥ 1/2): the Theorem 3.1 adversary constructs two
// indistinguishable executions and forces any sub-naive deterministic
// protocol to output a wrong bit — live, against this library's own
// crash-tolerant protocol misused outside its fault model.
package main

import (
	"fmt"
	"log"

	"repro/download"
	"repro/internal/lowerbound"
	"repro/internal/protocols/crashk"
	"repro/internal/protocols/naive"
)

func main() {
	fmt.Println("== Part 1: Byzantine minority (β = 1/4), colluding liars ==")
	const n, L = 256, 1 << 14
	for _, p := range []download.Protocol{download.Committee, download.TwoCycle, download.Naive} {
		rep, err := download.Run(download.Options{
			Protocol: p,
			N:        n, T: n / 4, L: L, Seed: 3,
			Behavior: download.Liar,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s correct=%-5v Q=%6d bits/peer (naive = %d)\n", p, rep.Correct, rep.Q, L)
	}

	fmt.Println("\n== Part 2: Byzantine majority (β = 1/2) — Theorem 3.1 attack ==")
	fmt.Println("victim runs a deterministic protocol that queries < L bits…")
	rep, err := lowerbound.AttackDeterministic(lowerbound.AttackConfig{
		N: 8, L: 512, Seed: 1, NewPeer: crashk.New,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", rep)

	fmt.Println("…but the naive protocol (Q = L) cannot be attacked:")
	rep, err = lowerbound.AttackDeterministic(lowerbound.AttackConfig{
		N: 8, L: 512, Seed: 1, NewPeer: naive.New,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", rep)
	fmt.Println("\nconclusion: below 1/2, clever protocols win; at or above 1/2, Q = L is the law.")
}
