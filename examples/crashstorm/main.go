// Crashstorm: the paper's headline deterministic result in action.
// Theorem 2.13 says asynchronous Download stays at the optimal query
// complexity O(L/n) for ANY crash fraction β < 1 — even when 90% of the
// network dies mid-protocol. This example sweeps β and watches the
// normalized query cost Q·(n−t)/L stay flat while the naive baseline
// would pay L regardless.
package main

import (
	"fmt"
	"log"

	"repro/download"
)

func main() {
	const (
		n = 20
		L = 1 << 14
	)
	fmt.Printf("n = %d peers, L = %d bits; all t faulty peers crash at random points\n\n", n, L)
	fmt.Printf("%-6s %-4s %-8s %-10s %-12s %-8s\n", "beta", "t", "Q", "L/(n-t)", "Q·(n-t)/L", "time")
	for _, beta := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9} {
		t := int(beta * n)
		opts := download.Options{
			Protocol: download.CrashKFast,
			N:        n, T: t, L: L, Seed: 7,
		}
		if t > 0 {
			opts.Behavior = download.CrashRandom
		}
		rep, err := download.Run(opts)
		if err != nil {
			log.Fatal(err)
		}
		if !rep.Correct {
			log.Fatalf("beta=%.2f: %v", beta, rep.Failures)
		}
		fmt.Printf("%-6.2f %-4d %-8d %-10d %-12.2f %-8.1f\n",
			beta, t, rep.Q, L/(n-t), float64(rep.Q)*float64(n-t)/float64(L), rep.Time)
	}
	fmt.Println("\nQ·(n−t)/L stays Θ(1): per-surviving-peer load is optimal at every β.")
	fmt.Println("(The Byzantine model can't do this: β ≥ 1/2 forces Q = L — see examples/byzantine.)")
}
