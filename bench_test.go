// Package repro's top-level benchmarks regenerate the paper's evaluation
// under `go test -bench`: one benchmark per Table-1 row and per
// experiment in DESIGN.md's index. Benchmarks report the paper's
// complexity measures as custom metrics:
//
//	queryQ     — query complexity Q (max source bits per nonfaulty peer)
//	avgQ       — mean query bits per nonfaulty peer
//	msgs       — message complexity M (total nonfaulty messages)
//	vtime      — virtual time T (units of max network latency)
//
// Wall-clock ns/op measures the simulator, not the protocol — the paper's
// claims are about the custom metrics' shapes (see EXPERIMENTS.md).
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/des"
	"repro/internal/lowerbound"
	"repro/internal/oracle"
	"repro/internal/protocols/committee"
	"repro/internal/protocols/crash1"
	"repro/internal/protocols/crashk"
	"repro/internal/protocols/multicycle"
	"repro/internal/protocols/naive"
	"repro/internal/protocols/segproto"
	"repro/internal/protocols/twocycle"
	"repro/internal/sim"
)

func benchSpec(n, t, L int, seed int64, factory func(sim.PeerID) sim.Peer, faults sim.FaultSpec) *sim.Spec {
	b := L / n
	if b < 64 {
		b = 64
	}
	return &sim.Spec{
		Config:  sim.Config{N: n, T: t, L: L, MsgBits: b, Seed: seed},
		NewPeer: factory,
		Delays:  adversary.NewRandomUnit(seed + 17),
		Faults:  faults,
	}
}

// runBench executes the spec b.N times and reports the paper's metrics.
func runBench(b *testing.B, mk func(seed int64) *sim.Spec) {
	b.Helper()
	b.ReportAllocs()
	var q, msgs, avgQ, vtime float64
	for i := 0; i < b.N; i++ {
		res, err := des.New().Run(mk(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Correct {
			b.Fatalf("iteration %d incorrect: %v", i, res.Failures)
		}
		q += float64(res.Q)
		msgs += float64(res.Msgs)
		avgQ += res.AvgQ()
		vtime += res.Time
	}
	n := float64(b.N)
	b.ReportMetric(q/n, "queryQ")
	b.ReportMetric(avgQ/n, "avgQ")
	b.ReportMetric(msgs/n, "msgs")
	b.ReportMetric(vtime/n, "vtime")
}

func crashFaults(n, t int, seed int64) sim.FaultSpec {
	if t == 0 {
		return sim.FaultSpec{}
	}
	f := adversary.SpreadFaulty(n, t)
	return sim.FaultSpec{
		Model: sim.FaultCrash, Faulty: f,
		Crash: adversary.NewCrashRandom(seed, f, 20*n),
	}
}

func byzFaults(n, t int, liar func(sim.PeerID, *sim.Knowledge) sim.Peer) sim.FaultSpec {
	if t == 0 {
		return sim.FaultSpec{}
	}
	return sim.FaultSpec{
		Model: sim.FaultByzantine, Faulty: adversary.SpreadFaulty(n, t),
		NewByzantine: liar,
	}
}

// --- Table 1 rows -----------------------------------------------------

const (
	t1N = 256
	t1L = 1 << 14
)

func BenchmarkTable1_Naive(b *testing.B) {
	runBench(b, func(seed int64) *sim.Spec {
		return benchSpec(t1N, 9*t1N/10, t1L, seed, naive.New,
			byzFaults(t1N, 9*t1N/10, adversary.NewSilent))
	})
}

func BenchmarkTable1_Crash1(b *testing.B) {
	runBench(b, func(seed int64) *sim.Spec {
		return benchSpec(t1N, 1, t1L, seed, crash1.New, crashFaults(t1N, 1, seed))
	})
}

func BenchmarkTable1_CrashK(b *testing.B) {
	runBench(b, func(seed int64) *sim.Spec {
		return benchSpec(t1N, 9*t1N/10, t1L, seed, crashk.NewFast,
			crashFaults(t1N, 9*t1N/10, seed))
	})
}

func BenchmarkTable1_Committee(b *testing.B) {
	runBench(b, func(seed int64) *sim.Spec {
		return benchSpec(t1N, t1N/4, t1L, seed, committee.New,
			byzFaults(t1N, t1N/4, committee.NewLiar))
	})
}

func BenchmarkTable1_TwoCycle(b *testing.B) {
	runBench(b, func(seed int64) *sim.Spec {
		return benchSpec(t1N, t1N/4, t1L, seed, twocycle.New,
			byzFaults(t1N, t1N/4, segproto.NewColludingLiar))
	})
}

func BenchmarkTable1_MultiCycle(b *testing.B) {
	runBench(b, func(seed int64) *sim.Spec {
		return benchSpec(t1N, t1N/4, t1L, seed, multicycle.New,
			byzFaults(t1N, t1N/4, segproto.NewColludingLiar))
	})
}

// --- E1: Thm 2.3, Q vs n ----------------------------------------------

func BenchmarkE1_Crash1(b *testing.B) {
	for _, n := range []int{8, 16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runBench(b, func(seed int64) *sim.Spec {
				return benchSpec(n, 1, 1<<14, seed, crash1.New, crashFaults(n, 1, seed))
			})
		})
	}
}

// --- E2: Thm 2.13, Q vs β ---------------------------------------------

func BenchmarkE2_CrashK(b *testing.B) {
	const n, L = 32, 1 << 14
	for _, beta := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		t := int(beta * n)
		b.Run(fmt.Sprintf("beta=%.2f", beta), func(b *testing.B) {
			runBench(b, func(seed int64) *sim.Spec {
				return benchSpec(n, t, L, seed, crashk.New, crashFaults(n, t, seed))
			})
		})
	}
}

// --- E4: Thm 3.4, committee Q vs β ------------------------------------

func BenchmarkE4_Committee(b *testing.B) {
	const n, L = 32, 1 << 13
	for _, beta := range []float64{0.1, 0.25, 0.4} {
		t := int(beta * n)
		b.Run(fmt.Sprintf("beta=%.2f", beta), func(b *testing.B) {
			runBench(b, func(seed int64) *sim.Spec {
				return benchSpec(n, t, L, seed, committee.New,
					byzFaults(n, t, committee.NewLiar))
			})
		})
	}
}

// --- E5: Thm 3.7, 2-cycle Q vs L --------------------------------------

func BenchmarkE5_TwoCycle(b *testing.B) {
	const n = 256
	for _, L := range []int{1 << 12, 1 << 14, 1 << 16} {
		b.Run(fmt.Sprintf("L=%d", L), func(b *testing.B) {
			runBench(b, func(seed int64) *sim.Spec {
				return benchSpec(n, n/4, L, seed, twocycle.New,
					byzFaults(n, n/4, segproto.NewColludingLiar))
			})
		})
	}
}

// --- E6: Thm 3.12, multi-cycle ----------------------------------------

func BenchmarkE6_MultiCycle(b *testing.B) {
	const n = 256
	for _, L := range []int{1 << 12, 1 << 14} {
		b.Run(fmt.Sprintf("L=%d", L), func(b *testing.B) {
			runBench(b, func(seed int64) *sim.Spec {
				return benchSpec(n, n/4, L, seed, multicycle.New,
					byzFaults(n, n/4, segproto.NewColludingLiar))
			})
		})
	}
}

// --- E7/E8: lower-bound attacks ---------------------------------------

func BenchmarkE7_DetAttack(b *testing.B) {
	success := 0
	for i := 0; i < b.N; i++ {
		rep, err := lowerbound.AttackDeterministic(lowerbound.AttackConfig{
			N: 8, L: 512, Seed: int64(i), NewPeer: crashk.New,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.Succeeded {
			success++
		}
	}
	b.ReportMetric(float64(success)/float64(b.N), "attack-success-rate")
}

func BenchmarkE8_RandAttack(b *testing.B) {
	success, trials := 0, 0
	for i := 0; i < b.N; i++ {
		reports, err := lowerbound.AttackRandomized(lowerbound.AttackConfig{
			N: 8, L: 256, Seed: int64(i) * 131, NewPeer: crashk.New,
		}, 3, 4)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reports {
			trials++
			if r.Succeeded {
				success++
			}
		}
	}
	b.ReportMetric(float64(success)/float64(trials), "attack-success-rate")
}

// --- E9: time vs b ----------------------------------------------------

func BenchmarkE9_TimeVsB(b *testing.B) {
	const n, L = 16, 1 << 14
	for _, msgBits := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("b=%d", msgBits), func(b *testing.B) {
			var vtime float64
			for i := 0; i < b.N; i++ {
				f := adversary.SpreadFaulty(n, n/4)
				res, err := des.New().Run(&sim.Spec{
					Config:  sim.Config{N: n, T: n / 4, L: L, MsgBits: msgBits, Seed: int64(i)},
					NewPeer: crashk.NewFast,
					Delays:  adversary.NewFixed(1.0),
					Faults: sim.FaultSpec{
						Model: sim.FaultCrash, Faulty: f,
						Crash: &adversary.CrashAll{Point: 0},
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Correct {
					b.Fatalf("incorrect: %v", res.Failures)
				}
				vtime += res.Time
			}
			b.ReportMetric(vtime/float64(b.N), "vtime")
		})
	}
}

// --- E10: oracle ODC --------------------------------------------------

func BenchmarkE10_Oracle(b *testing.B) {
	for _, nodes := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", nodes), func(b *testing.B) {
			var savings float64
			for i := 0; i < b.N; i++ {
				cfg := &oracle.Config{
					Nodes: nodes, NodeFaults: nodes / 4,
					SourceFaults: 2, Cells: 32, Seed: int64(i),
				}
				feeds, err := oracle.GenerateFeeds(cfg)
				if err != nil {
					b.Fatal(err)
				}
				base, err := oracle.RunBaseline(cfg, feeds)
				if err != nil {
					b.Fatal(err)
				}
				f := adversary.SpreadFaulty(cfg.Nodes, cfg.NodeFaults)
				runner := oracle.NewRunner(cfg, committee.New, sim.FaultSpec{
					Model: sim.FaultByzantine, Faulty: f,
					NewByzantine: committee.NewLiar,
				}, adversary.NewRandomUnit(cfg.Seed))
				down, err := oracle.RunDownload(cfg, feeds, runner)
				if err != nil {
					b.Fatal(err)
				}
				if !down.ODDHolds {
					b.Fatal("ODD violated")
				}
				savings += float64(base.PerNodeQueryBits) / float64(down.PerNodeQueryBits)
			}
			b.ReportMetric(savings/float64(b.N), "savings-x")
		})
	}
}

// --- A3: fast variant ablation ----------------------------------------

func BenchmarkA3_FastVariant(b *testing.B) {
	const n, L = 24, 1 << 13
	for _, v := range []struct {
		name    string
		factory func(sim.PeerID) sim.Peer
	}{{"base", crashk.New}, {"fast", crashk.NewFast}} {
		b.Run(v.name, func(b *testing.B) {
			runBench(b, func(seed int64) *sim.Spec {
				spec := benchSpec(n, n/2, L, seed, v.factory, crashFaults(n, n/2, seed))
				spec.Delays = adversary.NewRandom(seed, 0.5, 1.0)
				return spec
			})
		})
	}
}

// --- microbenchmarks on the hot data structures -----------------------

func BenchmarkDtreeBuildResolve(b *testing.B) {
	// Covered in internal packages' tests; here we measure the composed
	// protocol-scale path: a full twocycle determination at n=256.
	runBenchOnce := func(seed int64) *sim.Spec {
		return benchSpec(256, 64, 1<<13, seed, twocycle.New,
			byzFaults(256, 64, segproto.NewScatterLiar))
	}
	runBench(b, runBenchOnce)
}
