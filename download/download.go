// Package download is the public API of the asynchronous distributed
// Download library — a from-scratch implementation of "Distributed
// Download from an External Data Source in Asynchronous Faulty Settings"
// (Augustine, Chatterjee, King, Kumar, Meir, Peleg; companion of the
// PODC 2025 brief announcement on Byzantine-majority settings).
//
// The Data Retrieval model: n peers on a complete asynchronous network
// plus a trusted external source holding an L-bit array X. Peers learn X
// via cheap messages or expensive source queries; up to t = βn peers are
// faulty. Download requires every nonfaulty peer to output X exactly
// while minimizing the per-peer query complexity Q.
//
// The library ships every protocol from the paper:
//
//   - Naive           — Q = L, tolerates anything (the β ≥ 1/2 optimum)
//   - Crash1          — deterministic, 1 crash, Q = O(L/n)     (Thm 2.3)
//   - CrashK          — deterministic, ANY β < 1 crashes, Q = O(L/n) (Thm 2.13)
//   - CrashKFast      — CrashK with the fast stage-3 rule      (Thm 2.13)
//   - Committee       — deterministic, Byzantine β < 1/2, Q ≈ 2βL (Thm 3.4)
//   - TwoCycle        — randomized, Byzantine β < 1/2, Q = Õ(L/n) whp (Thm 3.7)
//   - MultiCycle      — randomized, Byzantine β < 1/2, better E[Q] (Thm 3.12)
//
// Use Run for one-call executions, or assemble sim.Spec values directly
// (internal packages) for finer control. Package internal/lowerbound
// demonstrates Theorems 3.1/3.2 constructively, and internal/oracle
// builds the paper's Section 4 blockchain-oracle application on top.
package download

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/adversary"
	"repro/internal/bitarray"
	"repro/internal/des"
	"repro/internal/live"
	"repro/internal/netrt"
	"repro/internal/obs"
	"repro/internal/protocols/committee"
	"repro/internal/protocols/crash1"
	"repro/internal/protocols/crashk"
	"repro/internal/protocols/multicycle"
	"repro/internal/protocols/naive"
	"repro/internal/protocols/segproto"
	"repro/internal/protocols/twocycle"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/trace"
)

// Protocol names a Download protocol implementation.
type Protocol string

// The implemented protocols.
const (
	Naive      Protocol = "naive"
	Crash1     Protocol = "crash1"
	CrashK     Protocol = "crashk"
	CrashKFast Protocol = "crashk-fast"
	Committee  Protocol = "committee"
	TwoCycle   Protocol = "twocycle"
	MultiCycle Protocol = "multicycle"
)

// Info describes a protocol for discovery and help output.
type Info struct {
	Protocol    Protocol
	Determinism string // "deterministic" | "randomized"
	FaultModel  string // "any" | "crash" | "byzantine"
	Resilience  string
	Query       string // asymptotic query complexity
	Theorem     string
}

// Protocols lists all implementations with their paper provenance.
func Protocols() []Info {
	return []Info{
		{Naive, "deterministic", "any", "any β < 1", "L", "folklore; optimal for β ≥ 1/2 (Thm 3.1/3.2)"},
		{Crash1, "deterministic", "crash", "t = 1", "L/n + L/(n(n−1))", "Thm 2.3"},
		{CrashK, "deterministic", "crash", "any β < 1", "O(L/n)", "Thm 2.13 (Alg. 2)"},
		{CrashKFast, "deterministic", "crash", "any β < 1", "O(L/n), better time", "Thm 2.13 (modified)"},
		{Committee, "deterministic", "byzantine", "β < 1/2", "L(2t+1)/n ≈ 2βL", "Thm 3.4"},
		{TwoCycle, "randomized", "byzantine", "β < 1/2", "Õ(L/n) whp", "Thm 3.7 (Protocol 4)"},
		{MultiCycle, "randomized", "byzantine", "β < 1/2", "Õ(L/n) expected", "Thm 3.12"},
	}
}

// Factory returns the peer constructor for a protocol.
func (p Protocol) Factory() (func(sim.PeerID) sim.Peer, error) {
	switch p {
	case Naive:
		return naive.New, nil
	case Crash1:
		return crash1.New, nil
	case CrashK:
		return crashk.New, nil
	case CrashKFast:
		return crashk.NewFast, nil
	case Committee:
		return committee.New, nil
	case TwoCycle:
		return twocycle.New, nil
	case MultiCycle:
		return multicycle.New, nil
	default:
		return nil, fmt.Errorf("download: unknown protocol %q", p)
	}
}

// FaultBehavior names an adversarial behavior for the faulty peers.
type FaultBehavior string

// The available fault behaviors. Crash behaviors stop peers; Byzantine
// behaviors replace them. "liar" picks the strongest protocol-aware
// attacker for the protocol under test.
const (
	NoFaults       FaultBehavior = ""
	CrashImmediate FaultBehavior = "crash"
	CrashRandom    FaultBehavior = "crash-random"
	Silent         FaultBehavior = "silent"
	Spam           FaultBehavior = "spam"
	Liar           FaultBehavior = "liar"
	Equivocate     FaultBehavior = "equivocate"
)

// Behaviors lists the supported fault behaviors.
func Behaviors() []FaultBehavior {
	return []FaultBehavior{NoFaults, CrashImmediate, CrashRandom, Silent, Spam, Liar, Equivocate}
}

// Options configures one execution.
type Options struct {
	// Protocol selects the implementation. Required.
	Protocol Protocol
	// N, T, L are the model parameters: peers, fault bound, input bits.
	N, T, L int
	// MsgBits is the message-size parameter b; 0 derives max(64, L/N).
	MsgBits int
	// Seed drives the input array, peer coins, delays, and crash points.
	Seed int64
	// Input optionally fixes the source array (length L); nil generates
	// a seeded random input.
	Input []bool
	// Faulty is the number of actually faulty peers (≤ T); 0 with a
	// non-empty Behavior defaults to T.
	Faulty int
	// Behavior selects the fault behavior; empty means no faults.
	Behavior FaultBehavior
	// AllowExcessFaults permits Faulty > T, modeling the scenario the
	// hardening layer exists for: the operator's fault-bound estimate was
	// wrong and the actual adversary exceeds it. Protocol guarantees are
	// void in that regime — pair it with RunHardened, which detects the
	// violation and escalates (see docs/HARDENING.md).
	AllowExcessFaults bool
	// Deadline, when positive, cuts the execution off after this many
	// time units (virtual in des, scaled wall time in live) and reports
	// the expiry as a failure. Zero disables the cut-off (the event cap
	// and the live runtime's wall-clock default still apply). Ignored by
	// TCP runs, which bound time via the netrt timeout.
	Deadline float64
	// SourceFaults, when non-empty, makes the external source misbehave
	// per the source.ParsePlan grammar — e.g.
	// "fail=0.25,timeout=0.1,outage=2..5,rate=64/256,seed=7". Time units
	// are virtual in the des and live runtimes and seconds on TCP. Honest
	// peers survive via the source resilience layer (retry/backoff/
	// breaker); the Report's Source* counters account for the recovery
	// work. Supported on every runtime.
	SourceFaults string
	// Mirrors, when non-empty, routes queries through a fleet of
	// untrusted replicas per the source.ParseMirrorPlan grammar — e.g.
	// "mirrors=5,byz=3,behavior=mixed,leaf=64,seed=7". Every mirror
	// reply carries a Merkle range proof checked against the source's
	// commitment root; verified bits are charged into Q exactly as a
	// direct query would be, failed proofs fall back to the
	// authoritative source (Report.ProofFailures / FallbackQueries).
	// Supported on every runtime; on TCP the proofs ride real QPROOF
	// frames (see docs/SPEC.md).
	Mirrors string
	// Churn schedules crash-recovery peers: each crashes after its
	// action count, stays down for Downtime, then rejoins and resumes
	// from its persisted verified-index state. Churn peers count toward
	// T alongside Faulty ones. Supported on every runtime; rejoining
	// churn on TCP additionally needs CheckpointDir, because a socket
	// peer's process state dies with it and recovery must come from a
	// durable checkpoint.
	Churn []ChurnPeer
	// CheckpointDir is where TCP churn peers persist durable checkpoints
	// so a rejoining incarnation restarts warm (see internal/checkpoint).
	// Required when Churn has a rejoining peer (Downtime >= 0) on TCP;
	// meaningless elsewhere — the des and live runtimes persist in
	// memory — and rejected there to catch misconfiguration.
	CheckpointDir string
	// Workers, when > 1, multiplexes peers M-per-worker over this many
	// scheduler workers: the des runtime speculates honest-peer state
	// machines on a worker pool and applies their effects in exact serial
	// order (results are byte-identical at any worker count), and the
	// live runtime serves peers from a shared run queue instead of one
	// goroutine each. Ignored by TCP runs.
	Workers int
	// Live runs the goroutine runtime instead of the deterministic
	// discrete-event runtime.
	Live bool
	// LiveTimeScale overrides the live runtime's wall duration of one
	// virtual time unit (default 2ms). Conformance sweeps run hundreds
	// of live executions and use a sub-millisecond scale. Requires Live.
	LiveTimeScale time.Duration
	// TCP runs the real-socket runtime (internal/netrt): peers exchange
	// wire-encoded frames through a local hub. Only crash-from-start
	// faults are supported there (Behavior CrashImmediate); other
	// behaviors are rejected. Mutually exclusive with Live.
	TCP bool
	// Trace receives per-event tracing when non-nil.
	Trace io.Writer
	// TraceJSONL, when non-nil, receives one JSON object per structured
	// runtime event (sends, deliveries, queries, crashes, terminations)
	// — see internal/trace for the analyzer. des runtime only.
	TraceJSONL io.Writer
	// Metrics, when non-nil, receives runtime counters and histograms
	// from the selected runtime (see docs/OBSERVABILITY.md for the
	// series). The registry is concurrency-safe and may be shared across
	// runs; nil disables collection at zero cost.
	Metrics *obs.Registry
	// Timeline, when non-nil, receives span/event marks (protocol phase
	// transitions, crashes, reconnects, terminations).
	Timeline *obs.Timeline
}

// UnsupportedError reports an option combination the selected runtime
// cannot execute — a capability gap, as opposed to a malformed option.
// Callers distinguish it with errors.As and can switch runtimes or fill
// the missing option instead of treating the run as misconfigured.
type UnsupportedError struct {
	// Runtime names the selected runtime: "des", "live", or "tcp".
	Runtime string
	// Feature is the option (combination) the runtime lacks.
	Feature string
	// Reason says what to change.
	Reason string
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("download: %s unsupported on the %s runtime: %s", e.Feature, e.Runtime, e.Reason)
}

// runtimeName labels the runtime the options select, for errors.
func (o *Options) runtimeName() string {
	switch {
	case o.TCP:
		return "tcp"
	case o.Live:
		return "live"
	default:
		return "des"
	}
}

// ChurnPeer schedules one crash-recovery peer (see Options.Churn): it
// runs the honest protocol, crashes after CrashAfter actions, and — when
// Downtime is non-negative — rejoins that many time units later, resuming
// from its persisted verified-index state. A negative Downtime is a plain
// crash that never recovers.
type ChurnPeer struct {
	Peer       int
	CrashAfter int
	Downtime   float64
}

// PeerReport is the per-peer outcome.
type PeerReport struct {
	ID         int
	Honest     bool
	Crashed    bool
	Terminated bool
	QueryBits  int
	MsgsSent   int
	Correct    bool
	// Rejoined reports a churn peer that crashed and rejoined.
	Rejoined bool
}

// Report is the outcome of one execution.
type Report struct {
	// Q is the query complexity: max bits queried by a nonfaulty peer.
	Q int
	// AvgQ is the mean over nonfaulty peers.
	AvgQ float64
	// Msgs and MsgBits are the message complexity of nonfaulty peers.
	Msgs    int
	MsgBits int
	// Time is the virtual (or scaled wall) time of the last honest
	// termination.
	Time float64
	// Events is the number of delivered events (des runtime; zero on the
	// live and TCP runtimes, which have no global event loop).
	Events int
	// Correct reports that every nonfaulty peer output X exactly.
	Correct bool
	// Failures describes violations when Correct is false.
	Failures []string
	// Source resilience accounting, nonzero only under SourceFaults:
	// honest peers' failed attempts, recovery retries, breaker-open
	// transitions, queries parked behind an open breaker, and the longest
	// time any peer spent degraded. Rejoins counts churn peers that
	// crashed and came back.
	SourceFailures  int
	SourceRetries   int
	BreakerOpens    int
	DeferredQueries int
	DegradedTime    float64
	Rejoins         int
	// Crash-recovery accounting, nonzero only under Options.Churn:
	// WarmHitBits counts query bits rejoined peers served from persisted
	// state without re-charging Q; CheckpointSaves/CheckpointRestores
	// count durable checkpoint writes and warm restores (TCP runtime,
	// where recovery crosses a process restart).
	WarmHitBits        int
	CheckpointSaves    int
	CheckpointRestores int
	// Mirror-tier accounting, nonzero only under Options.Mirrors:
	// queries answered by a verified mirror reply, mirror replies
	// rejected by Merkle verification, and queries re-issued to the
	// authoritative source after a refusal or a failed proof.
	MirrorHits      int
	ProofFailures   int
	FallbackQueries int
	// PerPeer has one entry per peer, by ID.
	PerPeer []PeerReport
	// Output is the first honest peer's output (the downloaded array).
	Output []bool
	// Hardening is set only by RunHardened: the supervisor's account of
	// detections, escalations, audit charges, and warm-start savings.
	Hardening *HardeningReport
}

// Run executes one Download and reports the outcome. Configuration
// errors are returned; protocol-level failures are reported in the
// Report (Correct=false with Failures).
func Run(opts Options) (*Report, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.TCP {
		return runTCP(opts)
	}
	spec, err := buildSpec(opts)
	if err != nil {
		return nil, err
	}
	var rec *trace.Recorder
	if opts.TraceJSONL != nil {
		rec = trace.NewRecorder(opts.TraceJSONL)
		spec.Observer = rec
	}
	var rt sim.Runtime = des.New()
	if opts.Live {
		lr := live.New()
		if opts.LiveTimeScale > 0 {
			lr.TimeScale = opts.LiveTimeScale
		}
		rt = lr
	}
	res, err := rt.Run(spec)
	if err != nil {
		return nil, err
	}
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return nil, fmt.Errorf("download: trace: %w", err)
		}
	}
	return buildReport(res), nil
}

// validate catches option-level misconfiguration with a specific error
// before spec construction: every case here either slipped through to a
// confusing sim-level message before, or — like a negative Faulty count —
// silently degenerated into a run with no faults at all.
func (o *Options) validate() error {
	if _, err := o.Protocol.Factory(); err != nil {
		return err
	}
	switch {
	case o.N < 2:
		return fmt.Errorf("download: need at least 2 peers, have N=%d", o.N)
	case o.L <= 0:
		return fmt.Errorf("download: input length L=%d must be positive", o.L)
	case o.T < 0 || o.T >= o.N:
		return fmt.Errorf("download: fault bound T=%d outside [0, N) for N=%d", o.T, o.N)
	case o.MsgBits < 0:
		return fmt.Errorf("download: message size MsgBits=%d must not be negative (0 derives a default)", o.MsgBits)
	case o.Faulty < 0:
		return fmt.Errorf("download: Faulty=%d must not be negative", o.Faulty)
	case o.Deadline < 0:
		return fmt.Errorf("download: Deadline=%g must not be negative", o.Deadline)
	case o.Input != nil && len(o.Input) != o.L:
		return fmt.Errorf("download: input length %d != L=%d", len(o.Input), o.L)
	case o.Live && o.TCP:
		return errors.New("download: Live and TCP are mutually exclusive")
	case o.LiveTimeScale < 0:
		return fmt.Errorf("download: LiveTimeScale=%v must not be negative", o.LiveTimeScale)
	case o.LiveTimeScale > 0 && !o.Live:
		return errors.New("download: LiveTimeScale requires Live")
	}
	if o.SourceFaults != "" {
		if _, err := source.ParsePlan(o.SourceFaults); err != nil {
			return err
		}
	}
	if o.Mirrors != "" {
		if _, err := source.ParseMirrorPlan(o.Mirrors); err != nil {
			return err
		}
	}
	if err := o.validateChurn(); err != nil {
		return err
	}
	switch o.Behavior {
	case NoFaults, CrashImmediate, CrashRandom, Silent, Spam, Liar, Equivocate:
	default:
		return fmt.Errorf("download: unknown behavior %q", o.Behavior)
	}
	if o.Behavior == NoFaults {
		if o.Faulty != 0 {
			return errors.New("download: faulty peers given without a behavior")
		}
		return nil
	}
	count := o.Faulty
	if count == 0 {
		count = o.T
	}
	if count >= o.N {
		return fmt.Errorf("download: %d faulty peers leaves no honest peer (N=%d)", count, o.N)
	}
	if count > o.T && !o.AllowExcessFaults {
		return fmt.Errorf("download: %d faulty exceeds bound T=%d (set AllowExcessFaults to model a violated fault bound)", count, o.T)
	}
	if o.TCP && o.Behavior != CrashImmediate {
		return &UnsupportedError{Runtime: "tcp", Feature: fmt.Sprintf("behavior %q", o.Behavior),
			Reason: "sockets implement crash-from-start faults only"}
	}
	return nil
}

// validateChurn checks the churn schedule against the selected runtime.
// Churn itself runs everywhere; the residual gap is durable recovery on
// sockets — a rejoining TCP peer restarts as a fresh process and can only
// come back warm from an on-disk checkpoint, so that combination without
// a CheckpointDir is an UnsupportedError rather than a silent cold start.
func (o *Options) validateChurn() error {
	rejoining := false
	for _, cp := range o.Churn {
		if cp.Peer < 0 || cp.Peer >= o.N {
			return fmt.Errorf("download: churn peer %d outside [0, N) for N=%d", cp.Peer, o.N)
		}
		if cp.CrashAfter < 0 {
			return fmt.Errorf("download: churn peer %d has negative CrashAfter %d", cp.Peer, cp.CrashAfter)
		}
		if cp.Downtime >= 0 {
			rejoining = true
		}
	}
	if o.TCP && rejoining && o.CheckpointDir == "" {
		return &UnsupportedError{Runtime: "tcp", Feature: "Churn rejoin without CheckpointDir",
			Reason: "a rejoining socket peer restarts cold unless it can restore a durable checkpoint; set CheckpointDir"}
	}
	if o.CheckpointDir != "" && !o.TCP {
		return &UnsupportedError{Runtime: o.runtimeName(), Feature: "CheckpointDir",
			Reason: "durable checkpoints exist on the TCP runtime only; des and live persist rejoin state in memory"}
	}
	return nil
}

// runTCP maps the options onto the real-socket runtime.
func runTCP(opts Options) (*Report, error) {
	if opts.Live {
		return nil, errors.New("download: Live and TCP are mutually exclusive")
	}
	factory, err := opts.Protocol.Factory()
	if err != nil {
		return nil, err
	}
	var absent []sim.PeerID
	switch opts.Behavior {
	case NoFaults:
	case CrashImmediate:
		count := opts.Faulty
		if count == 0 {
			count = opts.T
		}
		absent = adversary.SpreadFaulty(opts.N, count)
	default:
		return nil, &UnsupportedError{Runtime: "tcp", Feature: fmt.Sprintf("behavior %q", opts.Behavior),
			Reason: "sockets implement crash-from-start faults only"}
	}
	churn := make([]sim.ChurnPeer, 0, len(opts.Churn))
	for _, cp := range opts.Churn {
		churn = append(churn, sim.ChurnPeer{
			Peer: sim.PeerID(cp.Peer), CrashAfter: cp.CrashAfter, Downtime: cp.Downtime,
		})
	}
	var input *bitarray.Array
	if opts.Input != nil {
		if len(opts.Input) != opts.L {
			return nil, fmt.Errorf("download: input length %d != L=%d", len(opts.Input), opts.L)
		}
		input = bitarray.FromBools(opts.Input)
	}
	msgBits := opts.MsgBits
	if msgBits == 0 {
		msgBits = opts.L / max(opts.N, 1)
		if msgBits < 64 {
			msgBits = 64
		}
	}
	srcPlan, err := source.ParsePlan(opts.SourceFaults)
	if err != nil {
		return nil, err
	}
	mirrorPlan, err := source.ParseMirrorPlan(opts.Mirrors)
	if err != nil {
		return nil, err
	}
	res, err := netrt.Run(netrt.Config{
		N: opts.N, T: opts.T, L: opts.L, MsgBits: msgBits,
		Seed: opts.Seed, NewPeer: factory, Absent: absent, Input: input,
		SourceFaults: srcPlan, Mirrors: mirrorPlan,
		Churn: churn, CheckpointDir: opts.CheckpointDir,
		Metrics: opts.Metrics, Timeline: opts.Timeline, Label: string(opts.Protocol),
	})
	if err != nil {
		return nil, err
	}
	return buildReport(res), nil
}

func buildSpec(opts Options) (*sim.Spec, error) {
	factory, err := opts.Protocol.Factory()
	if err != nil {
		return nil, err
	}
	msgBits := opts.MsgBits
	if msgBits == 0 {
		msgBits = opts.L / max(opts.N, 1)
		if msgBits < 64 {
			msgBits = 64
		}
	}
	var input *bitarray.Array
	if opts.Input != nil {
		if len(opts.Input) != opts.L {
			return nil, fmt.Errorf("download: input length %d != L=%d", len(opts.Input), opts.L)
		}
		input = bitarray.FromBools(opts.Input)
	}
	spec := &sim.Spec{
		Config: sim.Config{
			N: opts.N, T: opts.T, L: opts.L,
			MsgBits: msgBits, Seed: opts.Seed, Input: input,
		},
		NewPeer:  factory,
		Delays:   adversary.NewRandomUnit(opts.Seed + 1000003),
		Trace:    opts.Trace,
		Metrics:  opts.Metrics,
		Timeline: opts.Timeline,
		Label:    string(opts.Protocol),
		Deadline: opts.Deadline,
		Workers:  opts.Workers,
	}
	srcPlan, err := source.ParsePlan(opts.SourceFaults)
	if err != nil {
		return nil, err
	}
	spec.SourceFaults = srcPlan
	mirrorPlan, err := source.ParseMirrorPlan(opts.Mirrors)
	if err != nil {
		return nil, err
	}
	spec.Mirrors = mirrorPlan
	faults, err := buildFaults(opts)
	if err != nil {
		return nil, err
	}
	for _, cp := range opts.Churn {
		faults.Churn = append(faults.Churn, sim.ChurnPeer{
			Peer: sim.PeerID(cp.Peer), CrashAfter: cp.CrashAfter, Downtime: cp.Downtime,
		})
	}
	spec.Faults = faults
	return spec, nil
}

func buildFaults(opts Options) (sim.FaultSpec, error) {
	if opts.Behavior == NoFaults {
		if opts.Faulty != 0 {
			return sim.FaultSpec{}, errors.New("download: faulty peers given without a behavior")
		}
		return sim.FaultSpec{Model: sim.FaultNone}, nil
	}
	count := opts.Faulty
	if count == 0 {
		count = opts.T
	}
	if count > opts.T && !opts.AllowExcessFaults {
		return sim.FaultSpec{}, fmt.Errorf("download: %d faulty exceeds bound T=%d", count, opts.T)
	}
	excess := count > opts.T
	faulty := adversary.SpreadFaulty(opts.N, count)
	switch opts.Behavior {
	case CrashImmediate:
		return sim.FaultSpec{
			Model: sim.FaultCrash, Faulty: faulty, AllowExcess: excess,
			Crash: &adversary.CrashAll{Point: 0},
		}, nil
	case CrashRandom:
		return sim.FaultSpec{
			Model: sim.FaultCrash, Faulty: faulty, AllowExcess: excess,
			Crash: adversary.NewCrashRandom(opts.Seed+9, faulty, 100*opts.N),
		}, nil
	case Silent:
		return sim.FaultSpec{
			Model: sim.FaultByzantine, Faulty: faulty, AllowExcess: excess,
			NewByzantine: adversary.NewSilent,
		}, nil
	case Spam:
		return sim.FaultSpec{
			Model: sim.FaultByzantine, Faulty: faulty, AllowExcess: excess,
			NewByzantine: adversary.NewSpammer(8, 512),
		}, nil
	case Liar, Equivocate:
		return sim.FaultSpec{
			Model: sim.FaultByzantine, Faulty: faulty, AllowExcess: excess,
			NewByzantine: liarFor(opts.Protocol, opts.Behavior),
		}, nil
	default:
		return sim.FaultSpec{}, fmt.Errorf("download: unknown behavior %q", opts.Behavior)
	}
}

// liarFor picks the strongest protocol-aware attacker available.
func liarFor(p Protocol, b FaultBehavior) func(sim.PeerID, *sim.Knowledge) sim.Peer {
	switch p {
	case Committee:
		if b == Equivocate {
			return committee.NewEquivocator
		}
		return committee.NewLiar
	case TwoCycle, MultiCycle:
		if b == Equivocate {
			return segproto.NewScatterLiar
		}
		return segproto.NewColludingLiar
	default:
		// Crash protocols have no Byzantine-aware attacker; silence is
		// the strongest valid behavior in their model.
		return adversary.NewSilent
	}
}

func buildReport(res *sim.Result) *Report {
	rep := &Report{
		Q:        res.Q,
		AvgQ:     res.AvgQ(),
		Msgs:     res.Msgs,
		MsgBits:  res.MsgBits,
		Time:     res.Time,
		Events:   res.Events,
		Correct:  res.Correct,
		Failures: append([]string(nil), res.Failures...),

		SourceFailures:  res.SourceFailures,
		SourceRetries:   res.SourceRetries,
		BreakerOpens:    res.BreakerOpens,
		DeferredQueries: res.DeferredQueries,
		DegradedTime:    res.DegradedTime,
		Rejoins:         res.Rejoins,

		WarmHitBits:        res.WarmHitBits,
		CheckpointSaves:    res.CheckpointSaves,
		CheckpointRestores: res.CheckpointRestores,

		MirrorHits:      res.MirrorHits,
		ProofFailures:   res.ProofFailures,
		FallbackQueries: res.FallbackQueries,
	}
	ids := make([]int, 0, len(res.PerPeer))
	for i := range res.PerPeer {
		ids = append(ids, int(res.PerPeer[i].ID))
	}
	sort.Ints(ids)
	for i := range res.PerPeer {
		ps := &res.PerPeer[i]
		rep.PerPeer = append(rep.PerPeer, PeerReport{
			ID:         int(ps.ID),
			Honest:     ps.Honest,
			Crashed:    ps.Crashed,
			Terminated: ps.Terminated,
			QueryBits:  ps.QueryBits,
			MsgsSent:   ps.MsgsSent,
			Correct:    ps.OutputCorrect,
			Rejoined:   ps.Rejoined,
		})
		if rep.Output == nil && ps.Honest && ps.OutputCorrect {
			out := make([]bool, ps.Output.Len())
			for j := range out {
				out[j] = ps.Output.Get(j)
			}
			rep.Output = out
		}
	}
	return rep
}
