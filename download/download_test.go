package download_test

import (
	"fmt"
	"testing"

	"repro/download"
)

func TestEveryProtocolFailureFree(t *testing.T) {
	for _, info := range download.Protocols() {
		info := info
		t.Run(string(info.Protocol), func(t *testing.T) {
			rep, err := download.Run(download.Options{
				Protocol: info.Protocol,
				N:        8, T: 2, L: 512, Seed: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Correct {
				t.Fatalf("incorrect: %v", rep.Failures)
			}
			if len(rep.Output) != 512 {
				t.Fatalf("output length %d", len(rep.Output))
			}
		})
	}
}

func TestFixedInputRoundTrip(t *testing.T) {
	input := make([]bool, 100)
	for i := range input {
		input[i] = i%3 == 0
	}
	rep, err := download.Run(download.Options{
		Protocol: download.CrashK,
		N:        5, T: 1, L: 100, Seed: 2,
		Input:    input,
		Behavior: download.CrashImmediate, Faulty: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect: %v", rep.Failures)
	}
	for i := range input {
		if rep.Output[i] != input[i] {
			t.Fatalf("output differs at %d", i)
		}
	}
}

func TestBehaviorMatrix(t *testing.T) {
	cases := []struct {
		proto    download.Protocol
		behavior download.FaultBehavior
		n, tf    int
	}{
		{download.CrashK, download.CrashImmediate, 8, 3},
		{download.CrashK, download.CrashRandom, 8, 5},
		{download.Crash1, download.CrashRandom, 6, 1},
		{download.Committee, download.Silent, 9, 4},
		{download.Committee, download.Liar, 9, 4},
		{download.Committee, download.Equivocate, 9, 4},
		{download.Committee, download.Spam, 9, 4},
		{download.Naive, download.Liar, 6, 2},
		{download.TwoCycle, download.Liar, 10, 3},
		{download.MultiCycle, download.Silent, 10, 3},
	}
	for _, c := range cases {
		label := fmt.Sprintf("%s/%s", c.proto, c.behavior)
		t.Run(label, func(t *testing.T) {
			rep, err := download.Run(download.Options{
				Protocol: c.proto,
				N:        c.n, T: c.tf, L: 256, Seed: 3,
				Behavior: c.behavior,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Correct {
				t.Fatalf("incorrect: %v", rep.Failures)
			}
		})
	}
}

func TestLiveRuntimeViaFacade(t *testing.T) {
	rep, err := download.Run(download.Options{
		Protocol: download.CrashKFast,
		N:        6, T: 2, L: 256, Seed: 4,
		Behavior: download.CrashRandom,
		Live:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect: %v", rep.Failures)
	}
}

func TestOptionErrors(t *testing.T) {
	cases := []download.Options{
		{Protocol: "bogus", N: 4, T: 1, L: 64},
		{Protocol: download.Naive, N: 4, T: 1, L: 64, Input: make([]bool, 3)},
		{Protocol: download.Naive, N: 4, T: 1, L: 64, Faulty: 1},
		{Protocol: download.Naive, N: 4, T: 1, L: 64, Faulty: 2, Behavior: download.Silent},
		{Protocol: download.Naive, N: 4, T: 1, L: 64, Behavior: "weird"},
		{Protocol: download.Naive, N: 0, T: 0, L: 64},
	}
	for i, opts := range cases {
		if _, err := download.Run(opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
}

func TestProtocolsCatalog(t *testing.T) {
	infos := download.Protocols()
	if len(infos) != 7 {
		t.Fatalf("catalog has %d entries", len(infos))
	}
	for _, info := range infos {
		if _, err := info.Protocol.Factory(); err != nil {
			t.Errorf("%s: %v", info.Protocol, err)
		}
		if info.Theorem == "" || info.Query == "" {
			t.Errorf("%s: incomplete catalog entry", info.Protocol)
		}
	}
	if len(download.Behaviors()) == 0 {
		t.Error("no behaviors listed")
	}
}

func TestDeterministicReports(t *testing.T) {
	run := func() *download.Report {
		rep, err := download.Run(download.Options{
			Protocol: download.TwoCycle,
			N:        12, T: 3, L: 1024, Seed: 9,
			Behavior: download.Silent,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Q != b.Q || a.Msgs != b.Msgs || a.Time != b.Time {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}
