package download

import (
	"errors"
	"fmt"

	"repro/internal/des"
	"repro/internal/harden"
	"repro/internal/live"
	"repro/internal/sim"
	"repro/internal/trace"
)

// HardenedAttempt summarizes one rung of a hardened execution.
type HardenedAttempt struct {
	// Protocol is the rung that ran.
	Protocol Protocol
	// Violations are the confirmed detector findings ("kind: detail");
	// empty means the attempt was declared clean.
	Violations []string
	// Equivocators counts distinct peers caught equivocating.
	Equivocators int
	// AuditedPeers and AuditBits summarize the rung's source audit.
	AuditedPeers int
	AuditBits    int
	// WarmHitBits counts query bits served from the warm-start cache.
	WarmHitBits int
	// VerifiedBits is the per-peer count of source-verified bits after
	// this attempt — the warm-start state the next rung inherits.
	VerifiedBits []int
	// Correct is the runtime's ground-truth verdict for this attempt. It
	// is reported for analysis only; escalation decisions never consult
	// it (see package harden).
	Correct bool
}

// HardeningReport is attached to Report by RunHardened.
type HardeningReport struct {
	// Detected reports that at least one attempt had a confirmed
	// assumption violation.
	Detected bool
	// Corrected reports that a violation was detected and the final
	// attempt was declared clean.
	Corrected bool
	// Ladder is the full escalation ladder; Escalations the rungs that
	// actually ran, in order.
	Ladder      []Protocol
	Escalations []Protocol
	// Attempts holds one entry per rung run.
	Attempts []HardenedAttempt
	// AuditBits and WarmHitBits total the per-attempt figures. Audit
	// bits are already accounted into Report.Q; warm hits are the bits
	// escalated attempts did NOT pay thanks to the cache.
	AuditBits   int
	WarmHitBits int
}

// DefaultLadder orders protocols by weakening assumptions, starting at
// p: randomized Byzantine protocols fall back to the deterministic
// committee protocol and finally to naive (correct for any β < 1, the
// unavoidable fallback once β ≥ 1/2 — see docs/HARDENING.md); crash
// protocols fall back within the crash family before naive.
func DefaultLadder(p Protocol) []Protocol {
	switch p {
	case MultiCycle:
		return []Protocol{MultiCycle, TwoCycle, Committee, Naive}
	case TwoCycle:
		return []Protocol{TwoCycle, Committee, Naive}
	case Committee:
		return []Protocol{Committee, Naive}
	case Crash1:
		return []Protocol{Crash1, CrashK, Naive}
	case CrashK:
		return []Protocol{CrashK, Naive}
	case CrashKFast:
		return []Protocol{CrashKFast, Naive}
	default:
		return []Protocol{Naive}
	}
}

// RunHardened executes opts under the hardening supervisor with the
// protocol's default escalation ladder: the run is watched by violation
// detectors, every honest output is spot-checked against the source, and
// a confirmed violation escalates to the next weaker-assumption protocol
// with a warm-start cache of already-verified bits. The returned
// Report's Q and per-peer query bits are cumulative across attempts
// (audit bits included) and its Hardening field records what happened.
// The adversary keeps attacking the *original* protocol on every rung —
// escalation changes the honest code, not the faults.
func RunHardened(opts Options, pol harden.Policy) (*Report, error) {
	return RunHardenedLadder(opts, pol, DefaultLadder(opts.Protocol))
}

// RunHardenedLadder is RunHardened with an explicit ladder, for tools
// and tests that want to skip or reorder rungs. The first rung must be
// opts.Protocol.
func RunHardenedLadder(opts Options, pol harden.Policy, ladder []Protocol) (*Report, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if opts.TCP {
		return nil, errors.New("download: hardening requires a simulated runtime (des or live), not TCP")
	}
	if len(ladder) == 0 || ladder[0] != opts.Protocol {
		return nil, fmt.Errorf("download: ladder must start at %q", opts.Protocol)
	}
	rungs := make([]harden.Rung, len(ladder))
	for i, p := range ladder {
		factory, err := p.Factory()
		if err != nil {
			return nil, err
		}
		rungs[i] = harden.Rung{Name: string(p), NewPeer: factory}
	}
	spec, err := buildSpec(opts)
	if err != nil {
		return nil, err
	}
	var rec *trace.Recorder
	if opts.TraceJSONL != nil {
		rec = trace.NewRecorder(opts.TraceJSONL)
		spec.Observer = rec
	}
	if pol.AttemptDeadline == 0 {
		pol.AttemptDeadline = opts.Deadline
	}
	var rt sim.Runtime = des.New()
	if opts.Live {
		rt = live.New()
	}
	out, err := harden.Run(harden.Config{
		Base:    *spec,
		Rungs:   rungs,
		Policy:  pol,
		Runtime: rt,
	})
	if err != nil {
		return nil, err
	}
	if rec != nil {
		if err := rec.Flush(); err != nil {
			return nil, fmt.Errorf("download: trace: %w", err)
		}
	}
	rep := buildReport(out.Final)
	rep.Q = out.Q
	var sum, honest int
	for i := range rep.PerPeer {
		rep.PerPeer[i].QueryBits = out.PerPeerQ[i]
		if rep.PerPeer[i].Honest {
			sum += out.PerPeerQ[i]
			honest++
		}
	}
	if honest > 0 {
		rep.AvgQ = float64(sum) / float64(honest)
	}
	hr := &HardeningReport{
		Detected:    out.Detected,
		Corrected:   out.Corrected,
		Ladder:      append([]Protocol(nil), ladder...),
		AuditBits:   out.AuditBits,
		WarmHitBits: out.WarmHitBits,
	}
	for _, att := range out.Attempts {
		ha := HardenedAttempt{
			Protocol:     Protocol(att.Rung),
			Equivocators: att.Equivocators,
			AuditedPeers: att.AuditedPeers,
			AuditBits:    att.AuditBits,
			WarmHitBits:  att.WarmHitBits,
			VerifiedBits: append([]int(nil), att.VerifiedBits...),
			Correct:      att.Result.Correct,
		}
		for _, v := range att.Violations {
			ha.Violations = append(ha.Violations, v.String())
		}
		hr.Escalations = append(hr.Escalations, ha.Protocol)
		hr.Attempts = append(hr.Attempts, ha)
	}
	rep.Hardening = hr
	return rep, nil
}
