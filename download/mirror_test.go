package download_test

import (
	"testing"

	"repro/download"
	"repro/internal/harden"
	"repro/internal/merkle"
)

// TestMirrorE2EDes: the one-call facade with a Byzantine-majority
// mirror fleet on the deterministic runtime — exact output, Q = L
// (verified bits charge once, wherever they came from), and the report
// accounts the proof failures and fallbacks.
func TestMirrorE2EDes(t *testing.T) {
	rep, err := download.Run(download.Options{
		Protocol: download.Naive, N: 4, L: 256, Seed: 41,
		Mirrors: "mirrors=5,byz=3,behavior=mixed,leaf=32,seed=7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect: %v", rep.Failures)
	}
	if rep.Q != 256 {
		t.Errorf("Q = %d, want 256", rep.Q)
	}
	if rep.MirrorHits == 0 || rep.ProofFailures == 0 || rep.FallbackQueries == 0 {
		t.Errorf("mirror counters: hits=%d pfails=%d fallbacks=%d, want all > 0",
			rep.MirrorHits, rep.ProofFailures, rep.FallbackQueries)
	}
}

// TestMirrorE2ELive: the same fleet on the goroutine runtime.
func TestMirrorE2ELive(t *testing.T) {
	rep, err := download.Run(download.Options{
		Protocol: download.Naive, N: 4, L: 256, Seed: 43, Live: true,
		Mirrors: "mirrors=4,byz=2,behavior=forge,seed=5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect: %v", rep.Failures)
	}
	if rep.Q != 256 {
		t.Errorf("Q = %d, want 256", rep.Q)
	}
	if rep.MirrorHits+rep.FallbackQueries == 0 {
		t.Error("mirror tier saw no traffic")
	}
}

// TestMirrorE2ETCP: over real sockets the mirror replies ride QPROOF
// frames and the root rides a ROOT push; the facade surfaces the same
// counters.
func TestMirrorE2ETCP(t *testing.T) {
	rep, err := download.Run(download.Options{
		Protocol: download.Naive, N: 3, L: 192, Seed: 45, TCP: true,
		Mirrors: "mirrors=3,byz=1,behavior=wrong,leaf=64,seed=3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect: %v", rep.Failures)
	}
	if rep.Q != 192 {
		t.Errorf("Q = %d, want 192", rep.Q)
	}
	if rep.MirrorHits == 0 {
		t.Error("no verified mirror hits over TCP")
	}
}

// TestMirrorOptionsValidated: a malformed plan fails fast at the
// options layer, before any runtime spins up.
func TestMirrorOptionsValidated(t *testing.T) {
	for _, bad := range []string{"mirrors=nope", "byz=2", "mirrors=2,behavior=liar", "mirrors=2,mirrors=3"} {
		_, err := download.Run(download.Options{
			Protocol: download.Naive, N: 2, L: 64, Mirrors: bad,
		})
		if err == nil {
			t.Errorf("plan %q accepted", bad)
		}
	}
}

// TestMirrorHardenedAudit: a mirror-tier run under the hardening
// supervisor automatically uses the Merkle commitment audit — a clean
// attempt's audit charges exactly one root fetch per honest peer
// instead of k sampled bits, so the hardened Q is L + merkle.RootBits.
func TestMirrorHardenedAudit(t *testing.T) {
	rep, err := download.RunHardened(download.Options{
		Protocol: download.Naive, N: 4, L: 512, Seed: 47,
		Mirrors: "mirrors=3,byz=1,behavior=stale,leaf=64,seed=3",
	}, harden.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect: %v", rep.Failures)
	}
	h := rep.Hardening
	if h == nil || h.Detected {
		t.Fatalf("hardening = %+v, want a clean undetected run", h)
	}
	if want := 4 * merkle.RootBits; h.AuditBits != want {
		t.Errorf("audit bits = %d, want %d (one root fetch per honest peer)", h.AuditBits, want)
	}
	if want := 512 + merkle.RootBits; rep.Q != want {
		t.Errorf("hardened Q = %d, want L + RootBits = %d", rep.Q, want)
	}
}
