package download_test

import (
	"testing"

	"repro/download"
)

func TestRetrieveParity(t *testing.T) {
	input := make([]bool, 101)
	want := false
	for i := range input {
		input[i] = i%7 == 0
		want = want != input[i]
	}
	got, rep, err := download.Retrieve(download.Options{
		Protocol: download.CrashK,
		N:        6, T: 2, L: 101, Seed: 1,
		Input:    input,
		Behavior: download.CrashRandom,
	}, download.Parity)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect: %v", rep.Failures)
	}
	if got != want {
		t.Fatalf("parity = %v, want %v", got, want)
	}
}

func TestRetrieveOnesCountAndMajority(t *testing.T) {
	input := make([]bool, 64)
	for i := 0; i < 40; i++ {
		input[i] = true
	}
	count, rep, err := download.Retrieve(download.Options{
		Protocol: download.Committee,
		N:        7, T: 3, L: 64, Seed: 2,
		Input:    input,
		Behavior: download.Liar,
	}, download.OnesCount)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct || count != 40 {
		t.Fatalf("count = %d (correct=%v), want 40", count, rep.Correct)
	}
	if !download.MajorityBit(input) {
		t.Fatal("majority should be true")
	}
}

func TestRetrieveCells(t *testing.T) {
	// Two 8-bit cells: 0b00000011 = 3 and 0b00000101 = 5 (little-endian
	// bit order), plus 3 trailing bits that must be ignored.
	input := []bool{
		true, true, false, false, false, false, false, false,
		true, false, true, false, false, false, false, false,
		true, true, true,
	}
	cells, rep, err := download.Retrieve(download.Options{
		Protocol: download.Naive,
		N:        3, T: 0, L: len(input), Seed: 3,
		Input: input,
	}, download.Cells(8))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect: %v", rep.Failures)
	}
	if len(cells) != 2 || cells[0] != 3 || cells[1] != 5 {
		t.Fatalf("cells = %v, want [3 5]", cells)
	}
	if download.Cells(0)(input) != nil || download.Cells(65)(input) != nil {
		t.Fatal("invalid widths should return nil")
	}
}

func TestRetrieveFailurePath(t *testing.T) {
	// Invalid options propagate the error.
	if _, _, err := download.Retrieve(download.Options{
		Protocol: "bogus", N: 4, T: 1, L: 8,
	}, download.Parity); err == nil {
		t.Fatal("expected error")
	}
}
