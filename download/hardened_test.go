package download_test

import (
	"strconv"
	"testing"

	"repro/download"
	"repro/internal/harden"
	"repro/internal/obs"
)

// byzMajorityOpts is the end-to-end scenario from docs/HARDENING.md: a
// Byzantine majority (β = 1/2 > the configured bound T/N) of consistent
// liars against twocycle. At seed 26 the forged segment reaches the
// frequency threshold at several honest peers while the true one misses
// it, so they silently adopt a wrong array — the failure mode the
// hardening layer exists for. Pinned by TestUnhardenedByzantineMajority.
func byzMajorityOpts() download.Options {
	return download.Options{
		Protocol: download.TwoCycle,
		N:        64, T: 15, L: 1024,
		Faulty: 32, Behavior: download.Liar,
		AllowExcessFaults: true,
		Seed:              26,
	}
}

// TestUnhardenedByzantineMajority pins the baseline: without the
// supervisor the run completes "successfully" — every honest peer
// terminates — but some output a wrong array with no error signal.
func TestUnhardenedByzantineMajority(t *testing.T) {
	rep, err := download.Run(byzMajorityOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Correct {
		t.Fatal("expected a wrong-output run; seed no longer exhibits the attack")
	}
	wrong := 0
	for _, p := range rep.PerPeer {
		if !p.Honest {
			continue
		}
		if !p.Terminated {
			t.Fatalf("peer %d: honest peer did not terminate (attack should be silent)", p.ID)
		}
		if !p.Correct {
			wrong++
		}
	}
	if wrong == 0 {
		t.Fatal("expected at least one honest peer with a wrong output")
	}
}

// TestHardenedByzantineMajorityCorrected is the headline end-to-end
// guarantee: the same execution under RunHardened detects the forgery
// via the source audit, escalates twocycle → naive, and every honest
// peer outputs X exactly, with the cumulative Q bounded by L plus the
// audit budget of both attempts.
func TestHardenedByzantineMajorityCorrected(t *testing.T) {
	opts := byzMajorityOpts()
	ladder := []download.Protocol{download.TwoCycle, download.Naive}
	rep, err := download.RunHardenedLadder(opts, harden.Policy{}, ladder)
	if err != nil {
		t.Fatal(err)
	}
	h := rep.Hardening
	if h == nil {
		t.Fatal("no hardening report")
	}
	if !h.Detected || !h.Corrected {
		t.Fatalf("detected=%v corrected=%v, want both", h.Detected, h.Corrected)
	}
	if len(h.Escalations) != 2 || h.Escalations[0] != download.TwoCycle || h.Escalations[1] != download.Naive {
		t.Fatalf("escalations = %v, want [twocycle naive]", h.Escalations)
	}
	if len(h.Attempts[0].Violations) == 0 {
		t.Fatal("first attempt recorded no violations")
	}
	if !rep.Correct {
		t.Fatalf("hardened run not correct: %v", rep.Failures)
	}
	for _, p := range rep.PerPeer {
		if p.Honest && !p.Correct {
			t.Fatalf("peer %d: honest peer output wrong under hardening", p.ID)
		}
	}
	// Cumulative Q (protocol queries + audits, warm hits free) must stay
	// within the naive fallback's cost plus the audit budget: the warm
	// start guarantees escalation never pays twice for a verified bit.
	bound := opts.L + len(h.Attempts)*harden.DefaultAuditBits
	if rep.Q > bound {
		t.Fatalf("Q = %d exceeds warm-start bound L + attempts*k = %d", rep.Q, bound)
	}
	if rep.Q <= opts.L/2 {
		t.Fatalf("Q = %d implausibly low for a naive fallback on L=%d", rep.Q, opts.L)
	}
}

// TestHardenedWarmStartNoRequery pins the warm-start guarantee at the
// obs layer: in the forced twocycle → naive escalation, the naive rung's
// per-peer query bits (series dr_sim_query_bits_total{protocol="naive"})
// must equal exactly L minus the bits that peer had already verified
// after the first attempt, and the cache must serve all the rest
// (dr_harden_warm_hit_bits_total) — zero already-verified indices are
// re-queried from the source.
func TestHardenedWarmStartNoRequery(t *testing.T) {
	opts := byzMajorityOpts()
	reg := obs.New()
	opts.Metrics = reg
	ladder := []download.Protocol{download.TwoCycle, download.Naive}
	rep, err := download.RunHardenedLadder(opts, harden.Policy{}, ladder)
	if err != nil {
		t.Fatal(err)
	}
	h := rep.Hardening
	if len(h.Attempts) != 2 {
		t.Fatalf("got %d attempts, want 2", len(h.Attempts))
	}
	verified := h.Attempts[0].VerifiedBits
	snap := reg.Snapshot()
	for _, p := range rep.PerPeer {
		if !p.Honest {
			continue
		}
		peer := strconv.Itoa(p.ID)
		naiveQ, ok := snap.Series("dr_sim_query_bits_total",
			map[string]string{"protocol": "naive", "peer": peer})
		if !ok {
			t.Fatalf("peer %s: no naive-rung query series", peer)
		}
		warm, ok := snap.Series("dr_harden_warm_hit_bits_total",
			map[string]string{"rung": "naive", "peer": peer})
		if !ok {
			t.Fatalf("peer %s: no warm-hit series", peer)
		}
		if v := verified[p.ID]; naiveQ.Value != float64(opts.L-v) {
			t.Errorf("peer %s: naive rung queried %v source bits, want L-verified = %d (re-queried %v verified bits)",
				peer, naiveQ.Value, opts.L-v, naiveQ.Value-float64(opts.L-v))
		} else if warm.Value != float64(v) {
			t.Errorf("peer %s: warm cache served %v bits, want all %d verified bits", peer, warm.Value, v)
		}
	}
}

// TestHardenedColdStartForComparison pins the A/B control: with the warm
// start disabled the naive rung re-queries the full input, so the
// cumulative Q exceeds the warm bound — evidence the cache is what keeps
// hardening affordable.
func TestHardenedColdStartForComparison(t *testing.T) {
	opts := byzMajorityOpts()
	ladder := []download.Protocol{download.TwoCycle, download.Naive}
	rep, err := download.RunHardenedLadder(opts, harden.Policy{DisableWarmStart: true}, ladder)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct || !rep.Hardening.Corrected {
		t.Fatalf("cold-start run should still correct (correct=%v)", rep.Correct)
	}
	if rep.Hardening.WarmHitBits != 0 {
		t.Fatalf("warm hits = %d with warm start disabled", rep.Hardening.WarmHitBits)
	}
	warmBound := opts.L + len(rep.Hardening.Attempts)*harden.DefaultAuditBits
	if rep.Q <= warmBound {
		t.Fatalf("cold Q = %d within warm bound %d; expected re-queried bits", rep.Q, warmBound)
	}
}

// TestHardenedCleanRunNoEscalation: inside its assumed regime the first
// rung passes the audit and the ladder never descends.
func TestHardenedCleanRunNoEscalation(t *testing.T) {
	rep, err := download.RunHardened(download.Options{
		Protocol: download.TwoCycle,
		N:        16, T: 3, L: 256,
		Faulty: 3, Behavior: download.Liar,
		Seed: 7,
	}, harden.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	h := rep.Hardening
	if h.Detected || h.Corrected {
		t.Fatalf("detected=%v corrected=%v on an in-regime run", h.Detected, h.Corrected)
	}
	if len(h.Attempts) != 1 {
		t.Fatalf("got %d attempts, want 1", len(h.Attempts))
	}
	if !rep.Correct {
		t.Fatalf("in-regime hardened run failed: %v", rep.Failures)
	}
	if h.AuditBits == 0 {
		t.Fatal("clean attempt must still be audited")
	}
}

// TestHardenedOptionErrors covers facade-level misconfiguration.
func TestHardenedOptionErrors(t *testing.T) {
	base := download.Options{Protocol: download.TwoCycle, N: 8, T: 3, L: 64}
	tcp := base
	tcp.TCP = true
	if _, err := download.RunHardened(tcp, harden.Policy{}); err == nil {
		t.Error("TCP accepted by RunHardened")
	}
	if _, err := download.RunHardenedLadder(base, harden.Policy{}, nil); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := download.RunHardenedLadder(base, harden.Policy{},
		[]download.Protocol{download.Naive, download.TwoCycle}); err == nil {
		t.Error("ladder not starting at opts.Protocol accepted")
	}
}

// TestDefaultLadders pins the ladder shapes: each ends at naive (the
// unavoidable β ≥ 1/2 fallback) and starts at the requested protocol.
func TestDefaultLadders(t *testing.T) {
	for _, info := range download.Protocols() {
		ladder := download.DefaultLadder(info.Protocol)
		if len(ladder) == 0 || ladder[0] != info.Protocol {
			t.Errorf("%s: ladder %v does not start at the protocol", info.Protocol, ladder)
		}
		if ladder[len(ladder)-1] != download.Naive {
			t.Errorf("%s: ladder %v does not end at naive", info.Protocol, ladder)
		}
	}
}
