package download_test

import (
	"testing"

	"repro/download"
)

func TestTCPTransport(t *testing.T) {
	rep, err := download.Run(download.Options{
		Protocol: download.CrashK,
		N:        6, T: 2, L: 1024, Seed: 8,
		Behavior: download.CrashImmediate,
		TCP:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect over TCP: %v", rep.Failures)
	}
	if rep.Q >= 1024 {
		t.Errorf("Q = %d not sublinear", rep.Q)
	}
}

func TestTCPTransportRejections(t *testing.T) {
	cases := []download.Options{
		{Protocol: download.CrashK, N: 6, T: 2, L: 64, TCP: true, Live: true},
		{Protocol: download.CrashK, N: 6, T: 2, L: 64, TCP: true, Behavior: download.Liar},
		{Protocol: "bogus", N: 6, T: 2, L: 64, TCP: true},
		{Protocol: download.CrashK, N: 6, T: 2, L: 64, TCP: true, Input: make([]bool, 3)},
	}
	for i, opts := range cases {
		if _, err := download.Run(opts); err == nil {
			t.Errorf("case %d: invalid TCP options accepted", i)
		}
	}
}

func TestTCPFixedInput(t *testing.T) {
	input := make([]bool, 200)
	for i := range input {
		input[i] = i%5 == 0
	}
	rep, err := download.Run(download.Options{
		Protocol: download.Naive,
		N:        3, T: 0, L: 200, Seed: 9,
		Input: input,
		TCP:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect: %v", rep.Failures)
	}
	for i := range input {
		if rep.Output[i] != input[i] {
			t.Fatalf("output differs at %d", i)
		}
	}
}
