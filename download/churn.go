package download

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseChurn parses the churn schedule grammar shared by the CLI flags
// (drchaos -churn) and the conformance fixtures: comma-separated
// "peer:crashAfter:downtime" triples, e.g. "0:4:2,3:7:-1". Peer and
// crashAfter are non-negative integers; downtime is a float in runtime
// time units (virtual on des/live, seconds on TCP), and a negative value
// means the peer crashes for good. An empty string is an empty schedule.
func ParseChurn(s string) ([]ChurnPeer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var churn []ChurnPeer
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("download: churn entry %q: want peer:crashAfter:downtime", part)
		}
		peer, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("download: churn entry %q: bad peer: %v", part, err)
		}
		after, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("download: churn entry %q: bad crashAfter: %v", part, err)
		}
		down, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("download: churn entry %q: bad downtime: %v", part, err)
		}
		churn = append(churn, ChurnPeer{Peer: peer, CrashAfter: after, Downtime: down})
	}
	return churn, nil
}
