package download

// The paper's general Data Retrieval problem asks every nonfaulty peer to
// output f(X) for a computable f; it reduces to Download followed by a
// local computation (the reduction the paper calls Download "fundamental"
// for). Retrieve packages that reduction.

// Retrieve runs a Download per opts and applies f to the downloaded
// array, returning f's value alongside the execution report. If the
// execution is not fully correct, the zero value of T is returned with
// the report describing the failure.
func Retrieve[T any](opts Options, f func(x []bool) T) (T, *Report, error) {
	var zero T
	rep, err := Run(opts)
	if err != nil {
		return zero, nil, err
	}
	if !rep.Correct || rep.Output == nil {
		return zero, rep, nil
	}
	return f(rep.Output), rep, nil
}

// Parity returns the XOR of all bits — the classic 1-bit retrieval
// function.
func Parity(x []bool) bool {
	p := false
	for _, b := range x {
		p = p != b
	}
	return p
}

// OnesCount returns the number of set bits.
func OnesCount(x []bool) int {
	c := 0
	for _, b := range x {
		if b {
			c++
		}
	}
	return c
}

// Cells decodes the array as consecutive little-endian w-bit unsigned
// values (trailing bits that do not fill a cell are ignored) — the
// "binary array extends to numbers" reading used by the oracle
// application.
func Cells(w int) func(x []bool) []uint64 {
	return func(x []bool) []uint64 {
		if w <= 0 || w > 64 {
			return nil
		}
		out := make([]uint64, 0, len(x)/w)
		for start := 0; start+w <= len(x); start += w {
			var v uint64
			for b := 0; b < w; b++ {
				if x[start+b] {
					v |= 1 << uint(b)
				}
			}
			out = append(out, v)
		}
		return out
	}
}

// MajorityBit returns the most common bit value (ties go to false).
func MajorityBit(x []bool) bool {
	return OnesCount(x)*2 > len(x)
}
