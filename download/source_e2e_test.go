package download_test

import (
	"strings"
	"testing"

	"repro/download"
)

// TestE2ESourceChaosByzantineMajority is the pinned end-to-end regression
// for the resilient source tier: a Byzantine majority of liars, a source
// outage spanning the opening of the download plus 25% transient query
// failures, and one crash-rejoin churn peer — and the honest peer still
// outputs X with its query bits bounded by L. The same scenario shape is
// pinned as a byte-identical replay in internal/dst/testdata/replays/
// naive-byzmajority-source-churn.dsr.
func TestE2ESourceChaosByzantineMajority(t *testing.T) {
	rep, err := download.Run(download.Options{
		Protocol: download.Naive,
		N:        5, T: 4, L: 512,
		Seed:         42,
		Faulty:       3, // 3 of 5: Byzantine majority
		Behavior:     download.Liar,
		SourceFaults: "fail=0.25,outage=0..4,seed=7",
		Churn:        []download.ChurnPeer{{Peer: 2, CrashAfter: 2, Downtime: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("honest peer failed under source chaos + Byzantine majority: %v", rep.Failures)
	}
	for _, pp := range rep.PerPeer {
		if pp.Honest && !pp.Correct {
			t.Errorf("honest peer %d output wrong", pp.ID)
		}
	}
	if rep.BreakerOpens < 1 {
		t.Errorf("BreakerOpens = %d, want >= 1 (outage must trip the breaker)", rep.BreakerOpens)
	}
	if rep.SourceFailures == 0 || rep.SourceRetries == 0 {
		t.Errorf("no recovery work recorded: failures=%d retries=%d",
			rep.SourceFailures, rep.SourceRetries)
	}
	if rep.Rejoins != 1 {
		t.Errorf("Rejoins = %d, want 1", rep.Rejoins)
	}
	// Bounded query bits: retries and breaker probes are recovery
	// accounting, never charged as query complexity — honest naive peers
	// pay exactly L despite every failed attempt.
	if rep.Q != 512 {
		t.Errorf("Q = %d, want exactly L=512 (recovery must not inflate Q)", rep.Q)
	}
	if rep.DegradedTime <= 0 {
		t.Errorf("DegradedTime = %v, want > 0", rep.DegradedTime)
	}
}

// TestSourceFaultOptionValidation pins the option-level rejections.
func TestSourceFaultOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts download.Options
		want string
	}{
		{"bad plan", download.Options{
			Protocol: download.Naive, N: 4, T: 1, L: 64,
			SourceFaults: "fail=2",
		}, "outside [0, 1)"},
		{"unknown field", download.Options{
			Protocol: download.Naive, N: 4, T: 1, L: 64,
			SourceFaults: "frobnicate=1",
		}, "unknown plan field"},
		{"churn rejoin on tcp needs checkpoint dir", download.Options{
			Protocol: download.Naive, N: 4, T: 1, L: 64,
			TCP:   true,
			Churn: []download.ChurnPeer{{Peer: 1, CrashAfter: 2, Downtime: 1}},
		}, "set CheckpointDir"},
		{"checkpoint dir off tcp", download.Options{
			Protocol: download.Naive, N: 4, T: 1, L: 64,
			CheckpointDir: "/tmp/ckpt",
			Churn:         []download.ChurnPeer{{Peer: 1, CrashAfter: 2, Downtime: 1}},
		}, "TCP runtime only"},
		{"churn peer out of range", download.Options{
			Protocol: download.Naive, N: 4, T: 1, L: 64,
			Churn: []download.ChurnPeer{{Peer: 7, CrashAfter: 2, Downtime: 1}},
		}, "outside [0, N)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := download.Run(tc.opts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestSourceFaultsOverTCPViaOptions drives the TCP runtime through the
// public API with a flaky source.
func TestSourceFaultsOverTCPViaOptions(t *testing.T) {
	rep, err := download.Run(download.Options{
		Protocol: download.Naive,
		N:        4, T: 0, L: 128,
		Seed:         9,
		TCP:          true,
		SourceFaults: "fail=0.4,seed=3",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect: %v", rep.Failures)
	}
	if rep.SourceFailures == 0 {
		t.Error("flaky source injected no failures")
	}
}
