package download_test

import (
	"strings"
	"testing"

	"repro/download"
)

// TestOptionValidationMatrix is the full option-validation table: every
// rejected configuration must fail with a specific, actionable message
// (not a confusing sim-level one), and the accepted edge cases must run.
// Before validate() existed, several of these slipped through — most
// dangerously a negative Faulty count, which silently ran with no faults
// at all.
func TestOptionValidationMatrix(t *testing.T) {
	ok := func(o download.Options) download.Options { return o }
	base := func() download.Options {
		return download.Options{Protocol: download.Naive, N: 4, T: 1, L: 64}
	}
	cases := []struct {
		name    string
		mutate  func(download.Options) download.Options
		wantErr string // substring of the error; "" means the run must succeed
	}{
		{"valid baseline", ok, ""},
		{"unknown protocol", func(o download.Options) download.Options {
			o.Protocol = "teleport"
			return o
		}, `unknown protocol "teleport"`},
		{"empty protocol", func(o download.Options) download.Options {
			o.Protocol = ""
			return o
		}, "unknown protocol"},
		{"zero peers", func(o download.Options) download.Options {
			o.N = 0
			return o
		}, "at least 2 peers"},
		{"one peer", func(o download.Options) download.Options {
			o.N = 1
			return o
		}, "at least 2 peers"},
		{"negative peers", func(o download.Options) download.Options {
			o.N = -4
			return o
		}, "at least 2 peers"},
		{"zero input length", func(o download.Options) download.Options {
			o.L = 0
			return o
		}, "must be positive"},
		{"negative input length", func(o download.Options) download.Options {
			o.L = -64
			return o
		}, "must be positive"},
		{"negative fault bound", func(o download.Options) download.Options {
			o.T = -1
			return o
		}, "outside [0, N)"},
		{"fault bound equals n", func(o download.Options) download.Options {
			o.T = o.N
			return o
		}, "outside [0, N)"},
		{"fault bound above n", func(o download.Options) download.Options {
			o.T = o.N + 3
			return o
		}, "outside [0, N)"},
		{"negative message size", func(o download.Options) download.Options {
			o.MsgBits = -8
			return o
		}, "must not be negative"},
		{"negative faulty count", func(o download.Options) download.Options {
			o.Faulty = -2
			o.Behavior = download.Silent
			return o
		}, "must not be negative"},
		{"negative deadline", func(o download.Options) download.Options {
			o.Deadline = -1
			return o
		}, "must not be negative"},
		{"input shorter than L", func(o download.Options) download.Options {
			o.Input = make([]bool, 32)
			return o
		}, "input length 32 != L=64"},
		{"input longer than L", func(o download.Options) download.Options {
			o.Input = make([]bool, 65)
			return o
		}, "input length 65 != L=64"},
		{"live and tcp together", func(o download.Options) download.Options {
			o.Live, o.TCP = true, true
			return o
		}, "mutually exclusive"},
		{"unknown behavior", func(o download.Options) download.Options {
			o.Behavior = "weird"
			return o
		}, `unknown behavior "weird"`},
		{"faulty without behavior", func(o download.Options) download.Options {
			o.Faulty = 1
			return o
		}, "without a behavior"},
		{"faulty exceeds bound", func(o download.Options) download.Options {
			o.Faulty, o.Behavior = 2, download.Silent
			return o
		}, "exceeds bound T=1"},
		{"excess faults opted in", func(o download.Options) download.Options {
			o.Faulty, o.Behavior = 2, download.Silent
			o.AllowExcessFaults = true
			return o
		}, ""},
		{"excess faults leave no honest peer", func(o download.Options) download.Options {
			o.Faulty, o.Behavior = 4, download.Silent
			o.AllowExcessFaults = true
			return o
		}, "leaves no honest peer"},
		{"default faulty=T leaves no honest peer", func(o download.Options) download.Options {
			o.N, o.T = 2, 0
			o.Behavior = download.CrashImmediate
			o.AllowExcessFaults = true
			o.Faulty = 2
			return o
		}, "leaves no honest peer"},
		{"tcp with byzantine behavior", func(o download.Options) download.Options {
			o.TCP = true
			o.Faulty, o.Behavior = 1, download.Silent
			return o
		}, "unsupported on the tcp runtime"},
		{"tcp with random crash", func(o download.Options) download.Options {
			o.TCP = true
			o.Faulty, o.Behavior = 1, download.CrashRandom
			return o
		}, "unsupported on the tcp runtime"},
		{"every behavior accepted in sim", func(o download.Options) download.Options {
			o.Faulty, o.Behavior = 1, download.Equivocate
			return o
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := download.Run(tc.mutate(base()))
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if rep == nil {
					t.Fatal("no report from accepted options")
				}
				return
			}
			if err == nil {
				t.Fatalf("options accepted, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
