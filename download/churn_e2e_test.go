package download_test

import (
	"errors"
	"testing"
	"time"

	"repro/download"
)

// TestChurnOverLiveViaOptions drives the live (goroutine) runtime through
// the public API with a crash-rejoin churn peer composed with a flaky
// source: the rejoined peer finishes, honest peers are untouched.
func TestChurnOverLiveViaOptions(t *testing.T) {
	rep, err := download.Run(download.Options{
		Protocol: download.Naive,
		N:        4, T: 1, L: 128,
		Seed:          11,
		Live:          true,
		LiveTimeScale: 200 * time.Microsecond,
		SourceFaults:  "fail=0.2,seed=3",
		Churn:         []download.ChurnPeer{{Peer: 0, CrashAfter: 2, Downtime: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect: %v", rep.Failures)
	}
	if rep.Rejoins != 1 {
		t.Errorf("Rejoins = %d, want 1", rep.Rejoins)
	}
	cp := rep.PerPeer[0]
	if cp.Honest || !cp.Crashed || !cp.Rejoined || !cp.Terminated {
		t.Errorf("churn peer flags = %+v, want crashed+rejoined+terminated, not honest", cp)
	}
	if rep.SourceRetries == 0 {
		t.Errorf("fail=0.2 produced no retries")
	}
}

// TestChurnOverTCPViaOptions drives the socket runtime through the public
// API: the churn peer crashes mid-run, rejoins through the durable
// checkpoint store in CheckpointDir, and the run stays correct.
func TestChurnOverTCPViaOptions(t *testing.T) {
	rep, err := download.Run(download.Options{
		Protocol: download.Naive,
		N:        4, T: 1, L: 128,
		Seed:          12,
		TCP:           true,
		CheckpointDir: t.TempDir(),
		Churn:         []download.ChurnPeer{{Peer: 0, CrashAfter: 2, Downtime: 0.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Correct {
		t.Fatalf("incorrect: %v", rep.Failures)
	}
	if rep.Rejoins != 1 {
		t.Errorf("Rejoins = %d, want 1", rep.Rejoins)
	}
	cp := rep.PerPeer[0]
	if cp.Honest || !cp.Rejoined || !cp.Terminated {
		t.Errorf("churn peer flags = %+v, want rejoined+terminated, not honest", cp)
	}
}

// TestUnsupportedErrorTyped pins that the residual capability gaps come
// back as *download.UnsupportedError, so orchestrators (the storm driver,
// conformance harness) can branch on the gap instead of string-matching.
func TestUnsupportedErrorTyped(t *testing.T) {
	cases := []struct {
		name    string
		opts    download.Options
		runtime string
	}{
		{"tcp churn rejoin without checkpoint dir", download.Options{
			Protocol: download.Naive, N: 4, T: 1, L: 64, TCP: true,
			Churn: []download.ChurnPeer{{Peer: 0, CrashAfter: 1, Downtime: 1}},
		}, "tcp"},
		{"checkpoint dir on live", download.Options{
			Protocol: download.Naive, N: 4, T: 1, L: 64, Live: true,
			CheckpointDir: "/tmp/ckpt",
		}, "live"},
		{"byzantine behavior on tcp", download.Options{
			Protocol: download.Committee, N: 4, T: 1, L: 64, TCP: true,
			Behavior: download.Liar,
		}, "tcp"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := download.Run(tc.opts)
			var ue *download.UnsupportedError
			if !errors.As(err, &ue) {
				t.Fatalf("err = %v (%T), want *download.UnsupportedError", err, err)
			}
			if ue.Runtime != tc.runtime {
				t.Errorf("Runtime = %q, want %q", ue.Runtime, tc.runtime)
			}
			if ue.Feature == "" || ue.Reason == "" {
				t.Errorf("typed error missing detail: %+v", ue)
			}
		})
	}
}
