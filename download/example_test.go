package download_test

import (
	"fmt"
	"log"

	"repro/download"
)

// The simplest possible use: download a seeded random array with the
// optimal deterministic crash-tolerant protocol while a third of the
// peers crash at adversarial points.
func ExampleRun() {
	rep, err := download.Run(download.Options{
		Protocol: download.CrashK,
		N:        12, T: 4, L: 1 << 12, Seed: 42,
		Behavior: download.CrashRandom,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correct:", rep.Correct)
	fmt.Println("bits learned:", len(rep.Output))
	// Output:
	// correct: true
	// bits learned: 4096
}

// Retrieval problems reduce to Download plus a local function: here the
// parity of the whole array, computed under Byzantine faults.
func ExampleRetrieve() {
	input := make([]bool, 100)
	input[3], input[77] = true, true // parity: false
	parity, rep, err := download.Retrieve(download.Options{
		Protocol: download.Committee,
		N:        9, T: 4, L: 100, Seed: 7,
		Input:    input,
		Behavior: download.Liar,
	}, download.Parity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correct:", rep.Correct, "parity:", parity)
	// Output:
	// correct: true parity: false
}

// Protocols lists every implementation with its paper provenance.
func ExampleProtocols() {
	for _, info := range download.Protocols() {
		if info.FaultModel == "crash" {
			fmt.Println(info.Protocol, info.Resilience)
		}
	}
	// Output:
	// crash1 t = 1
	// crashk any β < 1
	// crashk-fast any β < 1
}
