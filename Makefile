# Development targets for the Download library. Everything is stdlib Go;
# no external tools are required beyond the Go toolchain.

GO ?= go

.PHONY: all build vet test race bench bench-ci conform chaos experiments fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet: build
	gofmt -l . && $(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/live/ ./internal/netrt/ ./download/

bench:
	$(GO) test -bench=. -benchmem . | tee bench_output.txt

# Benchmark regression gate (see docs/PERF.md): a quick-mode pipeline run
# writes bench/BENCH_<timestamp>.json and exits 3 if costs regress past
# the thresholds vs the newest committed baseline; then the parallel
# sweep driver's determinism test runs under the race detector.
bench-ci:
	$(GO) run ./cmd/drbench -bench -quick -out bench
	$(GO) test -race -count=1 ./internal/sweep/

conform:
	$(GO) run ./cmd/drconform -n 16 -L 2048 -seeds 3 -tcp

# Tier-2 robustness gate: the chaos and live-runtime suites under the race
# detector, then a quick drchaos survival sweep over real sockets.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestLive' ./...
	$(GO) run ./cmd/drchaos -seeds 2

experiments:
	$(GO) run ./cmd/drbench -suite all | tee experiments_full.txt

# Short coverage-guided fuzzing passes over the schedule and wire fuzzers.
fuzz:
	$(GO) test -fuzz=FuzzCrashKSchedules -fuzztime=30s ./internal/des/
	$(GO) test -fuzz=FuzzCrash1Schedules -fuzztime=30s ./internal/des/
	$(GO) test -fuzz=FuzzCommitteeSchedules -fuzztime=30s ./internal/des/
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=30s ./internal/wire/
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=30s -run '^$$' ./internal/netrt/
	$(GO) test -fuzz=FuzzDecodeQuery -fuzztime=30s -run '^$$' ./internal/netrt/
	$(GO) test -fuzz=FuzzFrameRoundTrip -fuzztime=30s -run '^$$' ./internal/netrt/

clean:
	rm -rf internal/des/testdata internal/wire/testdata
