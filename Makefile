# Development targets for the Download library. Everything is stdlib Go;
# no external tools are required beyond the Go toolchain.

GO ?= go
FUZZTIME ?= 30s

# Pinned versions for the optional lint tools (make lint). `go run` fetches
# them on demand; everything else needs only the toolchain.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2024.1.1
GOVULNCHECK := golang.org/x/vuln/cmd/govulncheck@v1.1.3

# Every test invocation carries an explicit -timeout so a hung suite
# fails its CI job in minutes instead of idling until the runner's
# global kill (the per-job timeout-minutes then only bounds true
# pathologies). Override for slow local machines: make test TIMEOUT=20m.
TIMEOUT ?= 10m

.PHONY: all build fmt vet test race bench bench-ci conform conformance chaos source-chaos mirrors scale-smoke storm experiments fuzz lint cover dst-search dst-regen harden clean

all: build vet test

build:
	$(GO) build ./...

fmt:
	gofmt -w .

# gofmt -l exits 0 even when files need formatting; grep inverts that so
# unformatted files fail the target (and get listed).
vet: build
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

# -shuffle=on randomizes test and subtest execution order each run (the
# seed is printed on failure for reproduction with -shuffle=<seed>),
# keeping the suites free of inter-test order dependence.
test:
	$(GO) test -shuffle=on -timeout $(TIMEOUT) ./...

# The concurrency suites under the race detector: the live scheduler,
# the sharded socket hub + load generator, the download facade, and the
# des parallel sweep driver (TestWorkerDeterminism: same seed ⇒ identical
# results across worker counts, raced).
race:
	$(GO) test -race -timeout $(TIMEOUT) ./internal/des/ ./internal/live/ ./internal/netrt/ ./download/

bench:
	$(GO) test -bench=. -benchmem . | tee bench_output.txt

# Benchmark regression gate (see docs/PERF.md): a quick-mode pipeline run
# writes bench/BENCH_<timestamp>.json and exits 3 if costs regress past
# the thresholds vs the newest committed baseline; then the parallel
# sweep driver's determinism test runs under the race detector.
bench-ci:
	$(GO) run ./cmd/drbench -bench -quick -out bench
	$(GO) test -race -count=1 -timeout $(TIMEOUT) ./internal/sweep/

conform:
	$(GO) run ./cmd/drconform -n 16 -L 2048 -seeds 3 -tcp

# Cross-runtime conformance gate (see docs/SPEC.md + docs/TESTING.md
# "The conformance tier"): the conformance package suite (drift refusal,
# negative controls, des-vs-live equivalence, fixture round-trips), the
# drconform exit-code regressions, then the committed golden corpus
# executed on every runtime — des, the sm multiplexed-scheduler column,
# live, and real TCP sockets — diffed field-by-field into a protocol ×
# runtime pass matrix. Regenerate the corpus with
# `go test ./internal/conformance -update` (refuses semantic drift
# unless CorpusVersion is bumped).
conformance:
	$(GO) test -count=1 -timeout $(TIMEOUT) ./internal/conformance/ ./cmd/drconform/
	$(GO) run ./cmd/drconform -fixtures -tcp

# Tier-2 robustness gate: the chaos and live-runtime suites under the race
# detector, then a quick drchaos survival sweep over real sockets.
chaos:
	$(GO) test -race -count=1 -timeout $(TIMEOUT) -run 'TestChaos|TestLive' ./...
	$(GO) run ./cmd/drchaos -seeds 2

# Flaky-source robustness gate (see docs/RUNTIMES.md "Source faults"):
#  1. the source package suite plus every source/churn test across the
#     runtimes (des, netrt, dst replay corpus, download e2e);
#  2. the conformance matrix with the flaky-source column — every
#     protocol × behavior cell re-run against a seeded faulty source;
#  3. a drchaos sweep layering source faults on network chaos.
source-chaos:
	$(GO) test -count=1 -timeout $(TIMEOUT) ./internal/source/ ./internal/dst/
	$(GO) test -count=1 -timeout $(TIMEOUT) -run 'TestSource|TestChurn|TestE2ESourceChaos|TestPinned' ./internal/des/ ./internal/netrt/ ./download/
	$(GO) run ./cmd/drconform -n 12 -L 1024 -seeds 2 -flaky-source
	$(GO) run ./cmd/drchaos -seeds 2 -drops 0,0.1 -flaps 0 -source-faults "fail=0.2,timeout=0.1,seed=3"

# Merkle-mirror gate (see docs/MODEL.md "The mirror tier" +
# docs/SPEC.md frames): the commitment scheme's property and forgery
# suites, the mirror fleet suite, every mirror test across the runtimes
# (des, live under the race detector, real TCP sockets with the
# QPROOF/QUERYSRC frames, dst replay, download e2e), then a drconform
# sweep with the mirror column — every protocol × fleet cell re-run
# against a Byzantine-majority mirror fleet.
mirrors:
	$(GO) test -count=1 -timeout $(TIMEOUT) ./internal/merkle/ ./internal/source/
	$(GO) test -count=1 -timeout $(TIMEOUT) -run 'TestMirror' ./internal/des/ ./internal/netrt/ ./internal/dst/ ./download/
	$(GO) test -race -count=1 -timeout $(TIMEOUT) -run 'TestLiveMirror' ./internal/live/
	$(GO) run ./cmd/drconform -n 12 -L 1024 -seeds 2 -mirrors "mirrors=5,byz=3,behavior=mixed,seed=7"

# Million-peer scale gate (see docs/SCALING.md): the load-generator and
# shard suites, then a 50k-client drload run against one sharded hub
# with hard SLOs — p99 closed-loop latency under 2s and zero dropped
# queries (exit 3 on breach, drbench's regression convention). The
# LOAD_<timestamp>.json artifact lands in load/ for upload.
scale-smoke:
	$(GO) test -count=1 -timeout $(TIMEOUT) ./internal/benchfmt/ ./cmd/drload/
	$(GO) run ./cmd/drload -clients 50000 -conns 32 -shards 8 \
		-slo-p99 2000 -slo-zero-drop -out load

# Composed-fault storm gate (see docs/RUNTIMES.md "Crash recovery" and
# internal/storm): the storm suites — generator determinism, invariant
# checkers with negative controls, the pinned acceptance storm over real
# TCP plus its byte-identical committed .dsr — the checkpoint codec
# property suite and the drstorm exit-code regressions; the churn /
# resume-handshake / shard-bounce netrt suites under the race detector;
# then a drstorm matrix: every protocol × STORMS seeded storms, each
# composing network chaos × source outage × Byzantine-majority mirrors ×
# crash-recovery churn × a hub shard bounce on real sockets. drstorm
# exits 3 on any invariant breach; failing storms leave their spec JSON
# and a (des-shrunk) .dsr replay in storm-findings/. STORMTIME mirrors
# FUZZTIME: non-zero turns the fixed matrix into a wall-clock soak that
# cycles storm rounds until the budget is spent (the nightly uses 10m).
STORMTIME ?= 0s
STORMS ?= 3
storm:
	$(GO) test -count=1 -timeout $(TIMEOUT) ./internal/storm/ ./internal/checkpoint/ ./cmd/drstorm/
	$(GO) test -race -count=1 -timeout $(TIMEOUT) -run 'TestChurn|TestShard' ./internal/netrt/
	$(GO) run ./cmd/drstorm -storms $(STORMS) -budget $(STORMTIME) -out storm-findings

experiments:
	$(GO) run ./cmd/drbench -suite all | tee experiments_full.txt

# Short coverage-guided fuzzing passes over the schedule and wire fuzzers.
# Override FUZZTIME for quicker smoke runs (the nightly CI uses 10s).
fuzz:
	$(GO) test -fuzz=FuzzCrashKSchedules -fuzztime=$(FUZZTIME) ./internal/des/
	$(GO) test -fuzz=FuzzCrash1Schedules -fuzztime=$(FUZZTIME) ./internal/des/
	$(GO) test -fuzz=FuzzCommitteeSchedules -fuzztime=$(FUZZTIME) ./internal/des/
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME) -run '^$$' ./internal/netrt/
	$(GO) test -fuzz=FuzzDecodeQuery -fuzztime=$(FUZZTIME) -run '^$$' ./internal/netrt/
	$(GO) test -fuzz=FuzzFrameRoundTrip -fuzztime=$(FUZZTIME) -run '^$$' ./internal/netrt/
	$(GO) test -fuzz=FuzzDecodeProofReply -fuzztime=$(FUZZTIME) -run '^$$' ./internal/netrt/
	$(GO) test -fuzz=FuzzHostileProofFrame -fuzztime=$(FUZZTIME) -run '^$$' ./internal/netrt/
	$(GO) test -fuzz=FuzzDecodeProof -fuzztime=$(FUZZTIME) -run '^$$' ./internal/merkle/
	$(GO) test -fuzz=FuzzVerifyHostileProof -fuzztime=$(FUZZTIME) -run '^$$' ./internal/merkle/

# Optional static analysis + vulnerability scan; needs network the first
# time to fetch the pinned tools. Non-blocking in CI (see ci.yml).
lint:
	$(GO) run $(STATICCHECK) ./...
	$(GO) run $(GOVULNCHECK) ./...

# Merged coverage profile over every package (counting cross-package
# coverage via -coverpkg, so e.g. protocol code exercised from dst tests
# counts). Writes coverage.out + a per-function summary.
cover:
	$(GO) test -shuffle=on -timeout $(TIMEOUT) -covermode=atomic -coverpkg=./... -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# Deterministic-simulation harness deep gate (see docs/TESTING.md):
#  1. the dst suite (record/replay determinism, shrinker, replay corpus);
#  2. strategy search over the Byzantine-capable protocols below their β
#     thresholds — fixed seeds make every run reproducible; any finding
#     writes a .dsr replay + .jsonl trace under dst-findings/ and fails;
#  3. positive control: against the deliberately weakened committee the
#     same search MUST find a violation, or the harness itself is broken.
DST_BUDGET ?= 3m
dst-search:
	$(GO) test -count=1 -timeout $(TIMEOUT) ./internal/dst/ ./internal/adversary/
	$(GO) run ./cmd/drshrink search -protocol committee  -n 4 -t 1 -L 32 -seed 101 -strategies 48 -schedules 6 -budget $(DST_BUDGET) -out-dir dst-findings
	$(GO) run ./cmd/drshrink search -protocol committee  -n 7 -t 3 -L 70 -seed 102 -strategies 24 -schedules 4 -budget $(DST_BUDGET) -out-dir dst-findings
	$(GO) run ./cmd/drshrink search -protocol twocycle   -n 4 -t 1 -L 32 -seed 103 -strategies 24 -schedules 4 -budget $(DST_BUDGET) -out-dir dst-findings
	$(GO) run ./cmd/drshrink search -protocol multicycle -n 4 -t 1 -L 32 -seed 104 -strategies 24 -schedules 4 -budget $(DST_BUDGET) -out-dir dst-findings
	@if $(GO) run ./cmd/drshrink search -protocol committee-weak -n 4 -t 1 -L 16 -seed 1 -strategies 16 -schedules 4 -max-findings 1 >/dev/null 2>&1; then \
		echo "dst-search: positive control FAILED: no violation found against committee-weak"; exit 1; \
	else echo "dst-search: positive control ok (committee-weak violation found)"; fi

# Regenerate the checked-in replay regression corpus (after a deliberate
# engine/format change; bump dst.Version first).
dst-regen:
	DST_GENERATE=1 $(GO) test -count=1 -run TestGenerateReplayCorpus ./internal/dst/

# Hardening gate (see docs/HARDENING.md):
#  1. the harden package suite plus the pinned end-to-end regressions
#     (Byzantine-majority wrong output detected, escalated, corrected;
#     warm start re-queries zero verified bits);
#  2. the strategy search re-targeted at hardened runs: every violation
#     the search finds against the safe protocols must be corrected by
#     the supervisor (findings land in harden-findings/ as .dsr replays);
#  3. positive control: against committee-weak the search MUST find
#     violations AND the supervisor must correct every one of them.
harden:
	$(GO) test -count=1 -timeout $(TIMEOUT) ./internal/harden/
	$(GO) test -count=1 -timeout $(TIMEOUT) -run 'TestHardened|TestUnhardened|TestOptionValidationMatrix' ./download/
	$(GO) run ./cmd/drshrink search -protocol committee -n 4 -t 1 -L 32 -seed 201 -strategies 24 -schedules 4 -no-shrink -harden -out-dir harden-findings
	$(GO) run ./cmd/drshrink search -protocol twocycle  -n 4 -t 1 -L 32 -seed 202 -strategies 16 -schedules 4 -no-shrink -harden -out-dir harden-findings
	$(GO) run ./cmd/drshrink search -protocol committee-weak -n 4 -t 1 -L 16 -seed 203 -strategies 16 -schedules 4 -no-shrink -harden -expect-finding -out-dir harden-findings

# Scratch outputs only — committed testdata (fuzz seed corpora, replay
# regression files) must survive a clean.
clean:
	rm -rf bench_output.txt experiments_full.txt coverage.out dst-findings harden-findings storm-findings load
