# Development targets for the Download library. Everything is stdlib Go;
# no external tools are required beyond the Go toolchain.

GO ?= go
FUZZTIME ?= 30s

# Pinned versions for the optional lint tools (make lint). `go run` fetches
# them on demand; everything else needs only the toolchain.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2024.1.1
GOVULNCHECK := golang.org/x/vuln/cmd/govulncheck@v1.1.3

.PHONY: all build fmt vet test race bench bench-ci conform chaos experiments fuzz lint clean

all: build vet test

build:
	$(GO) build ./...

fmt:
	gofmt -w .

# gofmt -l exits 0 even when files need formatting; grep inverts that so
# unformatted files fail the target (and get listed).
vet: build
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/live/ ./internal/netrt/ ./download/

bench:
	$(GO) test -bench=. -benchmem . | tee bench_output.txt

# Benchmark regression gate (see docs/PERF.md): a quick-mode pipeline run
# writes bench/BENCH_<timestamp>.json and exits 3 if costs regress past
# the thresholds vs the newest committed baseline; then the parallel
# sweep driver's determinism test runs under the race detector.
bench-ci:
	$(GO) run ./cmd/drbench -bench -quick -out bench
	$(GO) test -race -count=1 ./internal/sweep/

conform:
	$(GO) run ./cmd/drconform -n 16 -L 2048 -seeds 3 -tcp

# Tier-2 robustness gate: the chaos and live-runtime suites under the race
# detector, then a quick drchaos survival sweep over real sockets.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestLive' ./...
	$(GO) run ./cmd/drchaos -seeds 2

experiments:
	$(GO) run ./cmd/drbench -suite all | tee experiments_full.txt

# Short coverage-guided fuzzing passes over the schedule and wire fuzzers.
# Override FUZZTIME for quicker smoke runs (the nightly CI uses 10s).
fuzz:
	$(GO) test -fuzz=FuzzCrashKSchedules -fuzztime=$(FUZZTIME) ./internal/des/
	$(GO) test -fuzz=FuzzCrash1Schedules -fuzztime=$(FUZZTIME) ./internal/des/
	$(GO) test -fuzz=FuzzCommitteeSchedules -fuzztime=$(FUZZTIME) ./internal/des/
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime=$(FUZZTIME) ./internal/wire/
	$(GO) test -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME) -run '^$$' ./internal/netrt/
	$(GO) test -fuzz=FuzzDecodeQuery -fuzztime=$(FUZZTIME) -run '^$$' ./internal/netrt/
	$(GO) test -fuzz=FuzzFrameRoundTrip -fuzztime=$(FUZZTIME) -run '^$$' ./internal/netrt/

# Optional static analysis + vulnerability scan; needs network the first
# time to fetch the pinned tools. Non-blocking in CI (see ci.yml).
lint:
	$(GO) run $(STATICCHECK) ./...
	$(GO) run $(GOVULNCHECK) ./...

clean:
	rm -rf internal/des/testdata internal/wire/testdata
