// Command drchaos soaks Download protocols on the real-socket runtime
// under seeded network chaos: it sweeps drop rate × connection flaps for
// each protocol, layers on duplication, jitter with reordering, and an
// optional healed partition, and prints a survival matrix. Every run's
// fault schedule is a pure function of its seed, so a failing cell can be
// replayed exactly.
//
// With -churn (or a seeded schedule via -storm-seed) the matrix gains a
// crash-recovery column: churn peers crash themselves mid-run and, when
// scheduled to rejoin, restore warm from durable checkpoints over the
// RESUME handshake; the summary then reports rejoin and checkpoint
// counters alongside the network-recovery work.
//
// Example:
//
//	drchaos -seeds 3
//	drchaos -protocols committee -drops 0,0.1,0.25 -flaps 0,3 -partition=false
//	drchaos -protocols naive -churn 1:2:0.2,3:4:-1
//	drchaos -storm-seed 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/download"
	"repro/internal/adversary"
	"repro/internal/conformance"
	"repro/internal/netrt"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/source"
	"repro/internal/storm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, notifyInterrupt()))
}

// notifyInterrupt converts SIGINT/SIGTERM into a closed channel so the
// soak can stop at a run boundary and still flush its partial survival
// matrix (CI kills a timed-out job with SIGTERM; the evidence must
// survive the kill).
func notifyInterrupt() <-chan struct{} {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-sig
		signal.Stop(sig)
		close(done)
	}()
	return done
}

// tally accumulates one protocol's robustness counters across its runs.
type tally struct {
	retries, reconnects, planDropped, planDuped, dupsDropped int
	srcFailures, srcRetries, breakerOpens, deferred          int
	mirrorHits, proofFailures, fallbackQueries               int
	rejoins, ckptSaves, ckptRestores                         int
}

func (a *tally) add(res *sim.Result) {
	a.rejoins += res.Rejoins
	a.ckptSaves += res.CheckpointSaves
	a.ckptRestores += res.CheckpointRestores
	a.retries += res.QueryRetries
	a.reconnects += res.Reconnects
	a.srcFailures += res.SourceFailures
	a.srcRetries += res.SourceRetries
	a.breakerOpens += res.BreakerOpens
	a.deferred += res.DeferredQueries
	a.mirrorHits += res.MirrorHits
	a.proofFailures += res.ProofFailures
	a.fallbackQueries += res.FallbackQueries
	for i := range res.PerPeer {
		ps := &res.PerPeer[i]
		a.planDropped += ps.PlanDropped
		a.planDuped += ps.PlanDuped
		a.dupsDropped += ps.DupFramesDropped
	}
}

// flapSchedule spreads `count` connection severs round-robin over the
// first peers, staggered in time so the run sees them mid-protocol.
func flapSchedule(n, count int) map[sim.PeerID][]time.Duration {
	if count <= 0 {
		return nil
	}
	flaps := make(map[sim.PeerID][]time.Duration)
	for k := 0; k < count; k++ {
		p := sim.PeerID(k % n)
		at := 20*time.Millisecond + time.Duration(k)*60*time.Millisecond
		flaps[p] = append(flaps[p], at)
	}
	return flaps
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// run executes the soak and returns its exit code: 0 when every run
// survived, 1 on failures, 2 on usage errors, 130 when interrupted —
// in which case the partial survival matrix is still flushed first.
func run(args []string, stdout io.Writer, interrupt <-chan struct{}) int {
	fs := flag.NewFlagSet("drchaos", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		protoList = fs.String("protocols", "naive,crashk,committee", "comma-separated protocols to soak")
		n         = fs.Int("n", 6, "peers")
		t         = fs.Int("t", 0, "fault bound")
		faulty    = fs.Int("faulty", 0, "peers absent from the start (≤ t)")
		l         = fs.Int("L", 512, "input bits")
		b         = fs.Int("b", 128, "message size parameter")
		drops     = fs.String("drops", "0,0.1,0.2", "comma-separated drop rates to sweep")
		flaps     = fs.String("flaps", "0,2", "comma-separated flap counts to sweep")
		dup       = fs.Float64("dup", 0.1, "duplication probability")
		delay     = fs.Duration("delay", 2*time.Millisecond, "max jitter per delivery")
		reorder   = fs.Float64("reorder", 0.05, "forced-reordering probability")
		partition = fs.Bool("partition", true, "include one healed partition (needs n ≥ 4)")
		srcSpec   = fs.String("source-faults", "", `seeded source fault plan layered on every run, e.g. "fail=0.25,outage=0..0.5,seed=7"`)
		mirSpec   = fs.String("mirrors", "", `untrusted mirror fleet plan layered on every run, e.g. "mirrors=5,byz=3,behavior=mixed,seed=7" (QPROOF frames ride the chaotic links too)`)
		churnSpec = fs.String("churn", "", `churn schedule "peer:crashAfter:downtime,..." layered on every run (negative downtime crashes for good; rejoining peers restore from durable checkpoints over the RESUME handshake)`)
		stormSeed = fs.Int64("storm-seed", 0, "derive a seeded per-protocol churn schedule from the storm generator's crash plane instead of -churn (0 = off)")
		seeds     = fs.Int("seeds", 3, "seeds per cell")
		timeout   = fs.Duration("timeout", 30*time.Second, "per-run timeout")
		verbose   = fs.Bool("v", false, "print every run")
		obsAddr   = fs.String("obs", "", "serve observability endpoints on this address for the whole soak (one registry accumulates across runs)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dropRates, err := parseFloats(*drops)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drchaos: bad -drops: %v\n", err)
		return 2
	}
	flapCounts, err := parseInts(*flaps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drchaos: bad -flaps: %v\n", err)
		return 2
	}
	var absent []sim.PeerID
	if *faulty > 0 {
		absent = adversary.SpreadFaulty(*n, *faulty)
	}
	var srcFaults *source.FaultPlan
	if *srcSpec != "" {
		plan, err := source.ParsePlan(*srcSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drchaos: bad -source-faults: %v\n", err)
			return 2
		}
		srcFaults = plan
	}
	var mirPlan *source.MirrorPlan
	if *mirSpec != "" {
		plan, err := source.ParseMirrorPlan(*mirSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drchaos: bad -mirrors: %v\n", err)
			return 2
		}
		mirPlan = plan
	}
	if *churnSpec != "" && *stormSeed != 0 {
		fmt.Fprintln(os.Stderr, "drchaos: -churn and -storm-seed are mutually exclusive")
		return 2
	}
	baseChurn, err := download.ParseChurn(*churnSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drchaos: bad -churn: %v\n", err)
		return 2
	}
	infoByName := make(map[string]download.Info)
	for _, info := range download.Protocols() {
		infoByName[string(info.Protocol)] = info
	}
	var (
		reg      *obs.Registry
		timeline *obs.Timeline
	)
	if *obsAddr != "" {
		reg = obs.New()
		timeline = obs.NewTimeline()
		srv, err := obs.Serve(*obsAddr, reg, timeline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drchaos: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "drchaos: observability on http://%s/\n", srv.Addr)
	}

	type combo struct {
		drop  float64
		flaps int
	}
	var combos []combo
	for _, d := range dropRates {
		for _, f := range flapCounts {
			combos = append(combos, combo{d, f})
		}
	}

	protos := strings.Split(*protoList, ",")
	results := make(map[string][]string) // protocol → cell strings
	tallies := make(map[string]*tally)
	failures := 0
	interrupted := false
	// check polls the interrupt channel at run boundaries so a SIGTERM'd
	// soak stops promptly but never mid-run.
	check := func() bool {
		select {
		case <-interrupt:
			interrupted = true
			return true
		default:
			return false
		}
	}

	for _, ps := range protos {
		proto := download.Protocol(strings.TrimSpace(ps))
		factory, err := proto.Factory()
		if err != nil {
			fmt.Fprintf(os.Stderr, "drchaos: %v\n", err)
			return 2
		}
		// Crash-recovery plane: an explicit -churn schedule, or the storm
		// generator's seeded crash plane (which schedules rejoining churn
		// only where a cold protocol restart converges). When churn is
		// active and no -t was given, the per-protocol conformance fault
		// bound keeps the churn peers inside the budget.
		tb := *t
		if (len(baseChurn) > 0 || *stormSeed != 0) && tb == 0 {
			tb = conformance.FaultBound(infoByName[string(proto)], *n)
		}
		var churn []sim.ChurnPeer
		for _, cp := range baseChurn {
			churn = append(churn, sim.ChurnPeer{Peer: sim.PeerID(cp.Peer), CrashAfter: cp.CrashAfter, Downtime: cp.Downtime})
		}
		if *stormSeed != 0 {
			for _, ce := range storm.Generate(proto, *n, tb, *l, *b, *stormSeed).Churn {
				churn = append(churn, sim.ChurnPeer{Peer: sim.PeerID(ce.Peer), CrashAfter: ce.CrashAfter, Downtime: ce.Downtime})
			}
		}
		rejoins := 0
		for _, cp := range churn {
			if cp.Downtime >= 0 {
				rejoins++
			}
		}
		tl := &tally{}
		tallies[string(proto)] = tl
		for _, c := range combos {
			pass, done := 0, 0
			for seed := 1; seed <= *seeds && !check(); seed++ {
				plan := &netrt.FaultPlan{
					Seed:    int64(seed) * 7919,
					Drop:    c.drop,
					Dup:     *dup,
					Delay:   *delay,
					Reorder: *reorder,
					Flaps:   flapSchedule(*n, c.flaps),
				}
				if *partition && *n >= 4 {
					plan.Partitions = []netrt.Partition{{
						A:     []sim.PeerID{0, 1},
						B:     []sim.PeerID{2, 3},
						Start: 40 * time.Millisecond,
						Heal:  400 * time.Millisecond,
					}}
				}
				// Rejoining churn needs a durable checkpoint store; each run
				// gets a fresh one so no incarnation restores state a prior
				// seed's run persisted.
				var ckptDir string
				if rejoins > 0 {
					dir, err := os.MkdirTemp("", "drchaos-ckpt")
					if err != nil {
						fmt.Fprintf(os.Stderr, "drchaos: checkpoint dir: %v\n", err)
						return 1
					}
					ckptDir = dir
				}
				res, err := netrt.Run(netrt.Config{
					N: *n, T: tb, L: *l, MsgBits: *b,
					Seed:          int64(seed),
					NewPeer:       factory,
					Absent:        absent,
					Churn:         churn,
					CheckpointDir: ckptDir,
					Faults:        plan,
					SourceFaults:  srcFaults,
					Mirrors:       mirPlan,
					Timeout:       *timeout,
					Resilience: netrt.Resilience{
						QueryTimeout: 250 * time.Millisecond,
						RTO:          60 * time.Millisecond,
					},
					Metrics:  reg,
					Timeline: timeline,
					Label:    string(proto),
				})
				if ckptDir != "" {
					os.RemoveAll(ckptDir)
				}
				done++
				ok := err == nil && res.Correct
				if ok {
					pass++
				} else {
					failures++
				}
				if res != nil {
					tl.add(res)
				}
				if *verbose || !ok {
					detail := "ok"
					if err != nil {
						detail = err.Error()
					} else if !res.Correct {
						detail = strings.Join(res.Failures, "; ")
					}
					fmt.Fprintf(stdout, "  %-10s drop=%.2f flaps=%d seed=%d: %s\n",
						proto, c.drop, c.flaps, seed, detail)
				}
			}
			// A cell cut short by the interrupt reports pass/done rather
			// than pass/seeds so the flushed matrix never overstates
			// coverage; completed cells have done == seeds.
			if done > 0 || !interrupted {
				results[string(proto)] = append(results[string(proto)],
					fmt.Sprintf("%d/%d", pass, done))
			}
			if interrupted {
				break
			}
		}
		if interrupted {
			break
		}
	}

	fmt.Fprintf(stdout, "\nsurvival matrix (pass/seeds; dup=%.2f delay=%v reorder=%.2f partition=%v):\n\n",
		*dup, *delay, *reorder, *partition && *n >= 4)
	fmt.Fprintf(stdout, "%-12s", "PROTOCOL")
	for _, c := range combos {
		fmt.Fprintf(stdout, " %-12s", fmt.Sprintf("d=%.2f/f=%d", c.drop, c.flaps))
	}
	fmt.Fprintln(stdout)
	for _, ps := range protos {
		p := strings.TrimSpace(ps)
		if _, ran := tallies[p]; !ran {
			continue // protocol never started before the interrupt
		}
		fmt.Fprintf(stdout, "%-12s", p)
		for _, cell := range results[p] {
			fmt.Fprintf(stdout, " %-12s", cell)
		}
		fmt.Fprintln(stdout)
	}

	fmt.Fprintf(stdout, "\nrecovery work (totals across all runs):\n")
	for _, ps := range protos {
		p := strings.TrimSpace(ps)
		tl := tallies[p]
		if tl == nil {
			continue
		}
		fmt.Fprintf(stdout, "%-12s query-retries=%-5d reconnects=%-5d plan-dropped=%-6d plan-duped=%-5d dups-deduped=%d\n",
			p, tl.retries, tl.reconnects, tl.planDropped, tl.planDuped, tl.dupsDropped)
		if srcFaults != nil {
			fmt.Fprintf(stdout, "%-12s src-failures=%-5d src-retries=%-5d breaker-opens=%-5d deferred=%d\n",
				"", tl.srcFailures, tl.srcRetries, tl.breakerOpens, tl.deferred)
		}
		if mirPlan != nil {
			fmt.Fprintf(stdout, "%-12s mirror-hits=%-5d proof-failures=%-5d fallback-queries=%d\n",
				"", tl.mirrorHits, tl.proofFailures, tl.fallbackQueries)
		}
		if len(baseChurn) > 0 || *stormSeed != 0 {
			fmt.Fprintf(stdout, "%-12s rejoins=%-5d ckpt-saves=%-5d ckpt-restores=%d\n",
				"", tl.rejoins, tl.ckptSaves, tl.ckptRestores)
		}
	}

	if interrupted {
		fmt.Fprintf(stdout, "\nINTERRUPTED: partial matrix flushed (%d failures so far)\n", failures)
		return 130
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "\nFAILED: %d runs did not survive\n", failures)
		return 1
	}
	fmt.Fprintf(stdout, "\nOK: all runs survived\n")
	return 0
}
