// Command drchaos soaks Download protocols on the real-socket runtime
// under seeded network chaos: it sweeps drop rate × connection flaps for
// each protocol, layers on duplication, jitter with reordering, and an
// optional healed partition, and prints a survival matrix. Every run's
// fault schedule is a pure function of its seed, so a failing cell can be
// replayed exactly.
//
// Example:
//
//	drchaos -seeds 3
//	drchaos -protocols committee -drops 0,0.1,0.25 -flaps 0,3 -partition=false
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/download"
	"repro/internal/adversary"
	"repro/internal/netrt"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/source"
)

func main() {
	os.Exit(run())
}

// tally accumulates one protocol's robustness counters across its runs.
type tally struct {
	retries, reconnects, planDropped, planDuped, dupsDropped int
	srcFailures, srcRetries, breakerOpens, deferred          int
}

func (a *tally) add(res *sim.Result) {
	a.retries += res.QueryRetries
	a.reconnects += res.Reconnects
	a.srcFailures += res.SourceFailures
	a.srcRetries += res.SourceRetries
	a.breakerOpens += res.BreakerOpens
	a.deferred += res.DeferredQueries
	for i := range res.PerPeer {
		ps := &res.PerPeer[i]
		a.planDropped += ps.PlanDropped
		a.planDuped += ps.PlanDuped
		a.dupsDropped += ps.DupFramesDropped
	}
}

// flapSchedule spreads `count` connection severs round-robin over the
// first peers, staggered in time so the run sees them mid-protocol.
func flapSchedule(n, count int) map[sim.PeerID][]time.Duration {
	if count <= 0 {
		return nil
	}
	flaps := make(map[sim.PeerID][]time.Duration)
	for k := 0; k < count; k++ {
		p := sim.PeerID(k % n)
		at := 20*time.Millisecond + time.Duration(k)*60*time.Millisecond
		flaps[p] = append(flaps[p], at)
	}
	return flaps
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func run() int {
	var (
		protoList = flag.String("protocols", "naive,crashk,committee", "comma-separated protocols to soak")
		n         = flag.Int("n", 6, "peers")
		t         = flag.Int("t", 0, "fault bound")
		faulty    = flag.Int("faulty", 0, "peers absent from the start (≤ t)")
		l         = flag.Int("L", 512, "input bits")
		b         = flag.Int("b", 128, "message size parameter")
		drops     = flag.String("drops", "0,0.1,0.2", "comma-separated drop rates to sweep")
		flaps     = flag.String("flaps", "0,2", "comma-separated flap counts to sweep")
		dup       = flag.Float64("dup", 0.1, "duplication probability")
		delay     = flag.Duration("delay", 2*time.Millisecond, "max jitter per delivery")
		reorder   = flag.Float64("reorder", 0.05, "forced-reordering probability")
		partition = flag.Bool("partition", true, "include one healed partition (needs n ≥ 4)")
		srcSpec   = flag.String("source-faults", "", `seeded source fault plan layered on every run, e.g. "fail=0.25,outage=0..0.5,seed=7"`)
		seeds     = flag.Int("seeds", 3, "seeds per cell")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-run timeout")
		verbose   = flag.Bool("v", false, "print every run")
		obsAddr   = flag.String("obs", "", "serve observability endpoints on this address for the whole soak (one registry accumulates across runs)")
	)
	flag.Parse()

	dropRates, err := parseFloats(*drops)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drchaos: bad -drops: %v\n", err)
		return 2
	}
	flapCounts, err := parseInts(*flaps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drchaos: bad -flaps: %v\n", err)
		return 2
	}
	var absent []sim.PeerID
	if *faulty > 0 {
		absent = adversary.SpreadFaulty(*n, *faulty)
	}
	var srcFaults *source.FaultPlan
	if *srcSpec != "" {
		plan, err := source.ParsePlan(*srcSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drchaos: bad -source-faults: %v\n", err)
			return 2
		}
		srcFaults = plan
	}
	var (
		reg      *obs.Registry
		timeline *obs.Timeline
	)
	if *obsAddr != "" {
		reg = obs.New()
		timeline = obs.NewTimeline()
		srv, err := obs.Serve(*obsAddr, reg, timeline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drchaos: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "drchaos: observability on http://%s/\n", srv.Addr)
	}

	type combo struct {
		drop  float64
		flaps int
	}
	var combos []combo
	for _, d := range dropRates {
		for _, f := range flapCounts {
			combos = append(combos, combo{d, f})
		}
	}

	protos := strings.Split(*protoList, ",")
	results := make(map[string][]string) // protocol → cell strings
	tallies := make(map[string]*tally)
	failures := 0

	for _, ps := range protos {
		proto := download.Protocol(strings.TrimSpace(ps))
		factory, err := proto.Factory()
		if err != nil {
			fmt.Fprintf(os.Stderr, "drchaos: %v\n", err)
			return 2
		}
		tl := &tally{}
		tallies[string(proto)] = tl
		for _, c := range combos {
			pass := 0
			for seed := 1; seed <= *seeds; seed++ {
				plan := &netrt.FaultPlan{
					Seed:    int64(seed) * 7919,
					Drop:    c.drop,
					Dup:     *dup,
					Delay:   *delay,
					Reorder: *reorder,
					Flaps:   flapSchedule(*n, c.flaps),
				}
				if *partition && *n >= 4 {
					plan.Partitions = []netrt.Partition{{
						A:     []sim.PeerID{0, 1},
						B:     []sim.PeerID{2, 3},
						Start: 40 * time.Millisecond,
						Heal:  400 * time.Millisecond,
					}}
				}
				res, err := netrt.Run(netrt.Config{
					N: *n, T: *t, L: *l, MsgBits: *b,
					Seed:         int64(seed),
					NewPeer:      factory,
					Absent:       absent,
					Faults:       plan,
					SourceFaults: srcFaults,
					Timeout:      *timeout,
					Resilience: netrt.Resilience{
						QueryTimeout: 250 * time.Millisecond,
						RTO:          60 * time.Millisecond,
					},
					Metrics:  reg,
					Timeline: timeline,
					Label:    string(proto),
				})
				ok := err == nil && res.Correct
				if ok {
					pass++
				} else {
					failures++
				}
				if res != nil {
					tl.add(res)
				}
				if *verbose || !ok {
					detail := "ok"
					if err != nil {
						detail = err.Error()
					} else if !res.Correct {
						detail = strings.Join(res.Failures, "; ")
					}
					fmt.Printf("  %-10s drop=%.2f flaps=%d seed=%d: %s\n",
						proto, c.drop, c.flaps, seed, detail)
				}
			}
			results[string(proto)] = append(results[string(proto)],
				fmt.Sprintf("%d/%d", pass, *seeds))
		}
	}

	fmt.Printf("\nsurvival matrix (pass/seeds; dup=%.2f delay=%v reorder=%.2f partition=%v):\n\n",
		*dup, *delay, *reorder, *partition && *n >= 4)
	fmt.Printf("%-12s", "PROTOCOL")
	for _, c := range combos {
		fmt.Printf(" %-12s", fmt.Sprintf("d=%.2f/f=%d", c.drop, c.flaps))
	}
	fmt.Println()
	for _, ps := range protos {
		p := strings.TrimSpace(ps)
		fmt.Printf("%-12s", p)
		for _, cell := range results[p] {
			fmt.Printf(" %-12s", cell)
		}
		fmt.Println()
	}

	fmt.Printf("\nrecovery work (totals across all runs):\n")
	for _, ps := range protos {
		p := strings.TrimSpace(ps)
		tl := tallies[p]
		fmt.Printf("%-12s query-retries=%-5d reconnects=%-5d plan-dropped=%-6d plan-duped=%-5d dups-deduped=%d\n",
			p, tl.retries, tl.reconnects, tl.planDropped, tl.planDuped, tl.dupsDropped)
		if srcFaults != nil {
			fmt.Printf("%-12s src-failures=%-5d src-retries=%-5d breaker-opens=%-5d deferred=%d\n",
				"", tl.srcFailures, tl.srcRetries, tl.breakerOpens, tl.deferred)
		}
	}

	if failures > 0 {
		fmt.Printf("\nFAILED: %d runs did not survive\n", failures)
		return 1
	}
	fmt.Printf("\nOK: all runs survived\n")
	return 0
}
