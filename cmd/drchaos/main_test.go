package main

import (
	"strings"
	"testing"
)

// TestExitCodeCleanSoak pins the passing path on a tiny fast sweep:
// exit 0 and an OK summary.
func TestExitCodeCleanSoak(t *testing.T) {
	var out strings.Builder
	code := run([]string{
		"-protocols", "naive", "-n", "4", "-L", "128",
		"-drops", "0", "-flaps", "0", "-seeds", "1", "-partition=false",
	}, &out, nil)
	if code != 0 {
		t.Fatalf("clean soak exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "OK: all runs survived") {
		t.Fatalf("no OK summary:\n%s", out.String())
	}
}

// TestExitCodeInterrupt pins the signal contract: a soak whose interrupt
// channel fires must still flush the (partial) survival matrix and exit
// 130, so an interrupted CI job uploads the evidence it has instead of
// dying silently.
func TestExitCodeInterrupt(t *testing.T) {
	interrupt := make(chan struct{})
	close(interrupt) // fires before the first run
	var out strings.Builder
	code := run([]string{
		"-protocols", "naive,crashk", "-n", "4", "-L", "128",
		"-drops", "0,0.1", "-flaps", "0", "-seeds", "3", "-partition=false",
	}, &out, interrupt)
	if code != 130 {
		t.Fatalf("interrupted soak exited %d, want 130:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "INTERRUPTED: partial matrix flushed") {
		t.Fatalf("partial matrix not flushed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "survival matrix") {
		t.Fatalf("matrix header missing from flush:\n%s", out.String())
	}
}

// TestExitCodeBadFlags pins usage errors to exit 2, distinct from
// survival failures.
func TestExitCodeBadFlags(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, nil); code != 2 {
		t.Fatalf("bad flag exited %d", code)
	}
}
