package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/download"
	"repro/internal/conformance"
)

// TestExitCodeCleanStorm pins the passing path: a small naive storm
// survives and the matrix reports OK with exit 0.
func TestExitCodeCleanStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("socket storm in -short mode")
	}
	var out strings.Builder
	code := run([]string{"-protocols", "naive", "-storms", "1", "-L", "64", "-b", "16"}, &out, nil)
	if code != 0 {
		t.Fatalf("clean storm exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "OK: all storms survived") {
		t.Fatalf("no OK summary:\n%s", out.String())
	}
}

// TestExitCodeBreachGate is the regression test for the CI gate: a storm
// that violates an invariant must exit 3 (not 0, not 1) and leave its
// artifacts — the spec JSON and a .dsr replay — in the -out directory.
// The breach is provoked by substituting an impossible envelope for
// naive, so the same storm that passes above breaches here.
func TestExitCodeBreachGate(t *testing.T) {
	if testing.Short() {
		t.Skip("socket storm in -short mode")
	}
	saved := conformance.Envelopes[download.Naive]
	conformance.Envelopes[download.Naive] = conformance.Envelope{
		MaxQ: func(n, tb, L, b int) int { return 0 },
	}
	defer func() { conformance.Envelopes[download.Naive] = saved }()

	dir := t.TempDir()
	var out strings.Builder
	code := run([]string{"-protocols", "naive", "-storms", "1", "-L", "64", "-b", "16",
		"-out", dir, "-shrink=false"}, &out, nil)
	if code != 3 {
		t.Fatalf("breached storm exited %d, want 3:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "BREACH") || !strings.Contains(out.String(), "envelope") {
		t.Fatalf("breach not reported:\n%s", out.String())
	}
	for _, f := range []string{"storm-naive-s1.json", "storm-naive-s1.dsr"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
}

// TestExitCodeBadFlags pins usage errors to exit 2, distinct from the
// breach gate's 3.
func TestExitCodeBadFlags(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, nil); code != 2 {
		t.Fatalf("bad flag exited %d", code)
	}
	if code := run([]string{"-protocols", "no-such-protocol"}, &out, nil); code != 2 {
		t.Fatalf("unknown protocol exited %d", code)
	}
}

// TestExitCodeInterrupt pins the signal contract: an interrupted soak
// still flushes the (partial) matrix and exits 130, so a timed-out CI
// job uploads the evidence it has instead of dying silently.
func TestExitCodeInterrupt(t *testing.T) {
	interrupt := make(chan struct{})
	close(interrupt) // fires before the first storm
	var out strings.Builder
	code := run([]string{"-protocols", "naive", "-storms", "3", "-L", "64", "-b", "16"}, &out, interrupt)
	if code != 130 {
		t.Fatalf("interrupted soak exited %d, want 130:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "INTERRUPTED") {
		t.Fatalf("partial matrix not flushed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "PROTOCOL") {
		t.Fatalf("matrix header missing from flush:\n%s", out.String())
	}
}
