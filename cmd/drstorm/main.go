// Command drstorm runs seeded composed-fault storms on the real-socket
// runtime and gates on the model's invariants. Each storm layers every
// fault plane the repo implements onto one execution — network chaos,
// a flaky source with an outage window, a Byzantine-majority mirror
// fleet, crash-recovery churn, and a hub shard bounce — all derived
// from a single storm seed (see internal/storm). A failing storm is
// written to the artifact directory as its exact spec (JSON) plus a
// deterministic-engine .dsr replay, shrunk when des reproduces the
// violation.
//
// Exit codes: 0 every storm survived, 1 operational error (artifact
// write failed), 2 usage, 3 at least one invariant breach (the CI gate),
// 130 interrupted — partial matrix flushed first.
//
// Example:
//
//	drstorm -storms 3
//	drstorm -protocols naive,committee -budget 10m -out storm-findings
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/download"
	"repro/internal/conformance"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, notifyInterrupt()))
}

// notifyInterrupt converts SIGINT/SIGTERM into a closed channel so the
// soak stops at a storm boundary and still flushes its partial matrix
// (CI kills a timed-out job with SIGTERM; the evidence must survive).
func notifyInterrupt() <-chan struct{} {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-sig
		signal.Stop(sig)
		close(done)
	}()
	return done
}

// tally accumulates one protocol's storm outcomes and recovery work.
type tally struct {
	runs, survived                     int
	rejoins, ckptSaves, ckptRestores   int
	shardRestarts, retries, reconnects int
	srcFailures, srcRetries            int
	proofFailures, fallbackQueries     int
}

func (a *tally) add(res *sim.Result) {
	if res == nil {
		return
	}
	a.rejoins += res.Rejoins
	a.ckptSaves += res.CheckpointSaves
	a.ckptRestores += res.CheckpointRestores
	a.shardRestarts += res.ShardRestarts
	a.retries += res.QueryRetries
	a.reconnects += res.Reconnects
	a.srcFailures += res.SourceFailures
	a.srcRetries += res.SourceRetries
	a.proofFailures += res.ProofFailures
	a.fallbackQueries += res.FallbackQueries
}

// planes renders a storm's composition in one line for run logs.
func planes(spec storm.Spec) string {
	var parts []string
	if len(spec.Churn) > 0 {
		parts = append(parts, fmt.Sprintf("churn=%d(rejoin %d)", len(spec.Churn), spec.Rejoins()))
	}
	if len(spec.Absent) > 0 {
		parts = append(parts, fmt.Sprintf("absent=%d", len(spec.Absent)))
	}
	parts = append(parts, fmt.Sprintf("src=%q", spec.SourceFaults))
	if spec.Mirrors != "" {
		parts = append(parts, "mirrors")
	}
	parts = append(parts, fmt.Sprintf("net(drop=%.2f,flaps=%d,part=%v)",
		spec.Net.Drop, spec.Net.Flaps, spec.Net.Partition))
	if spec.Bounce != nil {
		parts = append(parts, fmt.Sprintf("bounce(shard %d)", spec.Bounce.Shard))
	}
	return strings.Join(parts, " ")
}

// run executes the storm matrix and returns the exit code.
func run(args []string, stdout io.Writer, interrupt <-chan struct{}) int {
	fs := flag.NewFlagSet("drstorm", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		protoList = fs.String("protocols", "all", `comma-separated protocols to storm, or "all"`)
		n         = fs.Int("n", 6, "peers")
		tFlag     = fs.Int("t", 0, "fault bound (0 = per-protocol conformance bound)")
		l         = fs.Int("L", 512, "input bits")
		b         = fs.Int("b", 128, "message size parameter")
		storms    = fs.Int("storms", 3, "storm seeds per protocol (fixed matrix; ignored with -budget)")
		baseSeed  = fs.Int64("seed", 1, "base storm seed (round k uses seed+k)")
		budget    = fs.Duration("budget", 0, "wall-clock soak budget: keep cycling storm rounds until it is spent (0 = fixed -storms matrix)")
		timeout   = fs.Duration("timeout", 30*time.Second, "per-storm timeout")
		outDir    = fs.String("out", "storm-findings", "artifact dir for failing storms (spec JSON + .dsr replay)")
		shrink    = fs.Bool("shrink", true, "minimize des-reproduced findings with the dst shrinker")
		verbose   = fs.Bool("v", false, "print every storm")
		obsAddr   = fs.String("obs", "", "serve observability endpoints on this address for the whole soak")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	infoByName := make(map[string]download.Info)
	var names []string
	for _, info := range download.Protocols() {
		infoByName[string(info.Protocol)] = info
		names = append(names, string(info.Protocol))
	}
	protos := names
	if *protoList != "all" {
		protos = nil
		for _, p := range strings.Split(*protoList, ",") {
			p = strings.TrimSpace(p)
			if _, ok := infoByName[p]; !ok {
				fmt.Fprintf(os.Stderr, "drstorm: unknown protocol %q (have %s)\n", p, strings.Join(names, ", "))
				return 2
			}
			protos = append(protos, p)
		}
	}

	var (
		reg      *obs.Registry
		timeline *obs.Timeline
	)
	if *obsAddr != "" {
		reg = obs.New()
		timeline = obs.NewTimeline()
		srv, err := obs.Serve(*obsAddr, reg, timeline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drstorm: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "drstorm: observability on http://%s/\n", srv.Addr)
	}

	tallies := make(map[string]*tally)
	for _, p := range protos {
		tallies[p] = &tally{}
	}
	var (
		breaches    int
		opFailed    bool
		interrupted bool
	)
	check := func() bool {
		select {
		case <-interrupt:
			interrupted = true
			return true
		default:
			return false
		}
	}

	start := time.Now()
	for round := 0; !interrupted; round++ {
		if *budget > 0 {
			if round > 0 && time.Since(start) >= *budget {
				break
			}
		} else if round >= *storms {
			break
		}
		stormSeed := *baseSeed + int64(round)
		for _, p := range protos {
			if check() {
				break
			}
			info := infoByName[p]
			t := *tFlag
			if t == 0 {
				t = conformance.FaultBound(info, *n)
			}
			spec := storm.Generate(info.Protocol, *n, t, *l, *b, stormSeed)
			res, err := storm.Run(spec, storm.RunOptions{
				Timeout: *timeout, Metrics: reg, Timeline: timeline,
			})
			vs := storm.Check(spec, res, err)
			tl := tallies[p]
			tl.runs++
			tl.add(res)
			if len(vs) == 0 {
				tl.survived++
				if *verbose {
					fmt.Fprintf(stdout, "  %-11s s=%-4d ok    %s\n", p, stormSeed, planes(spec))
				}
				continue
			}
			breaches++
			fmt.Fprintf(stdout, "  %-11s s=%-4d BREACH %s\n", p, stormSeed, planes(spec))
			for _, v := range vs {
				fmt.Fprintf(stdout, "    ! %s\n", v)
			}
			f, rerr := storm.RecordFinding(spec, vs, *outDir, *shrink)
			switch {
			case rerr != nil:
				opFailed = true
				fmt.Fprintf(os.Stderr, "drstorm: record finding: %v\n", rerr)
			case f.ReplayFile != "":
				kind := "socket-only (des control pinned)"
				if f.DesReproduced {
					kind = "des-reproduced (shrunk replay)"
				}
				fmt.Fprintf(stdout, "    artifact: %s — %s\n", f.ReplayFile, kind)
			default:
				fmt.Fprintf(stdout, "    artifact: spec JSON only (%s has no des port)\n", p)
			}
		}
	}

	fmt.Fprintf(stdout, "\nstorm matrix (survived/storms; n=%d L=%d b=%d, every plane composed per seed):\n\n", *n, *l, *b)
	fmt.Fprintf(stdout, "%-12s %-10s %-8s %-12s %-14s %-8s %-10s\n",
		"PROTOCOL", "SURVIVED", "REJOINS", "CKPT(S/R)", "SHARD-BOUNCE", "RETRIES", "RECONNECTS")
	for _, p := range protos {
		tl := tallies[p]
		if tl.runs == 0 {
			continue // never started before the interrupt
		}
		fmt.Fprintf(stdout, "%-12s %-10s %-8d %-12s %-14d %-8d %-10d\n",
			p, fmt.Sprintf("%d/%d", tl.survived, tl.runs), tl.rejoins,
			fmt.Sprintf("%d/%d", tl.ckptSaves, tl.ckptRestores),
			tl.shardRestarts, tl.retries, tl.reconnects)
	}
	fmt.Fprintf(stdout, "\nsource/mirror work (totals): ")
	var sf, sr, pf, fq int
	for _, tl := range tallies {
		sf += tl.srcFailures
		sr += tl.srcRetries
		pf += tl.proofFailures
		fq += tl.fallbackQueries
	}
	fmt.Fprintf(stdout, "src-failures=%d src-retries=%d proof-failures=%d fallback-queries=%d\n", sf, sr, pf, fq)

	switch {
	case interrupted:
		fmt.Fprintf(stdout, "\nINTERRUPTED: partial matrix flushed (%d breaches so far)\n", breaches)
		return 130
	case breaches > 0:
		fmt.Fprintf(stdout, "\nBREACHED: %d storms violated invariants (artifacts in %s)\n", breaches, *outDir)
		return 3
	case opFailed:
		return 1
	}
	fmt.Fprintf(stdout, "\nOK: all storms survived\n")
	return 0
}
