// Command oracledemo walks through the paper's Section 4 application: a
// blockchain-oracle network collecting price feeds from partly-Byzantine
// external sources, comparing the classical Oracle Data Collection step
// (every node reads everything) with the Download-based one (Thm 4.2).
//
// Example:
//
//	oracledemo -nodes 16 -cells 32 -sourcefaults 2 -network byzantine
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adversary"
	"repro/internal/oracle"
	"repro/internal/protocols/committee"
	"repro/internal/protocols/crashk"
	"repro/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		nodes   = flag.Int("nodes", 16, "oracle network size n")
		nFaults = flag.Int("nodefaults", 0, "faulty oracle nodes (default n/4)")
		sFaults = flag.Int("sourcefaults", 2, "Byzantine data sources f_s (2f_s+1 used)")
		cells   = flag.Int("cells", 32, "values per source")
		network = flag.String("network", "byzantine", "oracle-network fault model: crash|byzantine")
		seed    = flag.Int64("seed", 42, "scenario seed")
	)
	flag.Parse()

	cfg := &oracle.Config{
		Nodes:        *nodes,
		NodeFaults:   *nFaults,
		SourceFaults: *sFaults,
		Cells:        *cells,
		Seed:         *seed,
	}
	if cfg.NodeFaults == 0 {
		cfg.NodeFaults = cfg.Nodes / 4
	}

	feeds, err := oracle.GenerateFeeds(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oracledemo: %v\n", err)
		return 2
	}
	fmt.Printf("scenario: %d oracle nodes (%d %s-faulty), %d sources (%d Byzantine), %d cells\n",
		cfg.Nodes, cfg.NodeFaults, *network, cfg.NumSources(), cfg.SourceFaults, cfg.Cells)
	fmt.Printf("honest range of cell 0: [%d, %d]; a Byzantine source reports %d\n\n",
		feeds.HonestMin[0], feeds.HonestMax[0], feeds.Values[0][0])

	base, err := oracle.RunBaseline(cfg, feeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oracledemo: baseline: %v\n", err)
		return 2
	}

	faulty := adversary.SpreadFaulty(cfg.Nodes, cfg.NodeFaults)
	var runner oracle.DownloadRunner
	switch *network {
	case "crash":
		runner = oracle.NewRunner(cfg, crashk.New, sim.FaultSpec{
			Model: sim.FaultCrash, Faulty: faulty,
			Crash: adversary.NewCrashRandom(cfg.Seed, faulty, 50*cfg.Nodes),
		}, adversary.NewRandomUnit(cfg.Seed))
	case "byzantine":
		runner = oracle.NewRunner(cfg, committee.New, sim.FaultSpec{
			Model: sim.FaultByzantine, Faulty: faulty,
			NewByzantine: committee.NewLiar,
		}, adversary.NewRandomUnit(cfg.Seed))
	default:
		fmt.Fprintf(os.Stderr, "oracledemo: unknown network model %q\n", *network)
		return 2
	}
	down, err := oracle.RunDownload(cfg, feeds, runner)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oracledemo: download ODC: %v\n", err)
		return 2
	}

	fmt.Printf("%-28s %-18s %-18s\n", "", "baseline ODC", "Download ODC (Thm 4.2)")
	fmt.Printf("%-28s %-18d %-18d\n", "per-node query bits (max)", base.PerNodeQueryBits, down.PerNodeQueryBits)
	fmt.Printf("%-28s %-18d %-18d\n", "total query bits", base.TotalQueryBits, down.TotalQueryBits)
	fmt.Printf("%-28s %-18v %-18v\n", "ODD (honest range) holds", base.ODDHolds, down.ODDHolds)
	fmt.Printf("%-28s %-18v %-18v\n", "all honest nodes agree", base.AllAgree, down.AllAgree)
	fmt.Printf("%-28s %-18s %-18d\n", "download failures", "-", down.DownloadFailures)
	fmt.Printf("\nper-node savings factor: %.1fx (grows ≈ linearly with n)\n",
		float64(base.PerNodeQueryBits)/float64(down.PerNodeQueryBits))
	fmt.Printf("published cell 0: %d (honest range [%d, %d])\n",
		down.Published[0], feeds.HonestMin[0], feeds.HonestMax[0])

	if !down.ODDHolds || !down.AllAgree {
		return 1
	}
	return 0
}
