// Command drshrink is the CLI surface of the deterministic-simulation
// test harness (internal/dst): record executions as replay files, replay
// and verify them, shrink failures to minimal counterexamples, and run
// the Byzantine strategy search.
//
// Subcommands:
//
//	drshrink record  -protocol crash1 -n 4 -t 1 -L 64 -seed 7 -sched 3 -o run.dsr
//	drshrink replay  run.dsr                 # re-execute, print the outcome
//	drshrink verify  run.dsr [more.dsr ...]  # check expectation + event hash
//	drshrink shrink  run.dsr -o min.dsr      # delta-debug to a minimal failure
//	drshrink search  -protocol committee -n 4 -t 1 -L 16 -budget 30s -out-dir findings/
//	drshrink trace   run.dsr                 # emit the drtrace JSONL trace
//	drshrink list                            # registered protocols
//
// Every violation drshrink reports comes with a .dsr file that reproduces
// it byte-deterministically; `drshrink verify` on a checked-in replay is
// exactly what the regression suite runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/dst"
	"repro/internal/harden"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprintln(os.Stderr, "usage: drshrink <record|replay|verify|shrink|search|trace|list> [flags]")
	return 2
}

func run(args []string) int {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "record":
		return cmdRecord(args[1:])
	case "replay":
		return cmdReplay(args[1:])
	case "verify":
		return cmdVerify(args[1:])
	case "shrink":
		return cmdShrink(args[1:])
	case "search":
		return cmdSearch(args[1:])
	case "trace":
		return cmdTrace(args[1:])
	case "list":
		return cmdList()
	case "-h", "--help", "help":
		usage()
		return 0
	default:
		fmt.Fprintf(os.Stderr, "drshrink: unknown subcommand %q\n", args[0])
		return usage()
	}
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "drshrink: %v\n", err)
	return 1
}

func cmdList() int {
	for _, name := range dst.ProtocolNames() {
		p, _ := dst.LookupProtocol(name)
		tag := ""
		if p.TestHook {
			tag = " [test hook]"
		} else if p.Randomized {
			tag = " [randomized]"
		}
		fmt.Printf("%-18s %s%s\n", p.Name, p.Doc, tag)
	}
	return 0
}

// modelFlags registers the shared model-parameter flags on fs.
func modelFlags(fs *flag.FlagSet) (proto *string, n, t, l, b *int, seed *int64) {
	proto = fs.String("protocol", "crash1", "protocol registry name (see `drshrink list`)")
	n = fs.Int("n", 4, "number of peers")
	t = fs.Int("t", 1, "fault budget t")
	l = fs.Int("L", 64, "input length in bits")
	b = fs.Int("b", 64, "message size b in bits")
	seed = fs.Int64("seed", 1, "input/protocol seed")
	return
}

func cmdRecord(args []string) int {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	proto, n, t, l, b, seed := modelFlags(fs)
	sched := fs.Int64("sched", 1, "schedule seed for the recorded random schedule")
	crash := fs.String("crash", "", "crash spec `peer:point[,peer:point...]` (fault model: crash)")
	program := fs.String("byz", "", "Byzantine strategy program, e.g. `lie,equivocate` (fault model: byzantine)")
	byzSeed := fs.Int64("byzseed", 1, "strategy coin seed (with -byz)")
	faulty := fs.String("faulty", "", "comma-separated faulty peer ids (default 0..t-1 when a fault model is set)")
	out := fs.String("o", "", "output replay file (default: stdout)")
	fs.Parse(args)

	r := &dst.Replay{
		Version: dst.Version, Protocol: *proto,
		N: *n, T: *t, L: *l, MsgBits: *b, Seed: *seed,
	}
	if err := applyFaults(r, *crash, *program, *byzSeed, *faulty); err != nil {
		return fail(err)
	}
	rec, o, err := dst.Record(r, *sched)
	if err != nil {
		return fail(err)
	}
	if o.Result.Correct {
		rec.Expect = dst.ExpectCorrect
	} else {
		rec.Expect = dst.ExpectViolation
	}
	printOutcome(rec.Protocol, o)
	return writeReplay(rec, *out)
}

func cmdReplay(args []string) int {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: drshrink replay <run.dsr>")
		return 2
	}
	r, err := dst.Load(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	o, err := dst.Run(r)
	if err != nil {
		return fail(err)
	}
	printOutcome(r.Protocol, o)
	if o.Violation() {
		return 1
	}
	return 0
}

func cmdVerify(args []string) int {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: drshrink verify <run.dsr> [more.dsr ...]")
		return 2
	}
	bad := 0
	for _, path := range fs.Args() {
		r, err := dst.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", path, err)
			bad++
			continue
		}
		if _, err := dst.Verify(r); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", path, err)
			bad++
			continue
		}
		fmt.Printf("ok   %s (expect %s, %d choices)\n", path, expectLabel(r), len(r.Choices))
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func cmdShrink(args []string) int {
	fs := flag.NewFlagSet("shrink", flag.ExitOnError)
	out := fs.String("o", "", "output replay file (default: overwrite input)")
	traceOut := fs.String("trace", "", "also write the minimized run's JSONL trace here")
	maxRuns := fs.Int("max-runs", 0, "cap on candidate executions (0 = default)")
	verbose := fs.Bool("v", false, "log every accepted shrink step")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: drshrink shrink [-o min.dsr] [-trace min.jsonl] <run.dsr>")
		return 2
	}
	r, err := dst.Load(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	opts := dst.ShrinkOptions{MaxRuns: *maxRuns}
	if *verbose {
		opts.Log = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	min, rep, err := dst.Shrink(r, opts)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("shrink: %d -> %d choices in %d runs (n=%d t=%d L=%d)\n",
		rep.InitialChoices, rep.FinalChoices, rep.Runs, min.N, min.T, min.L)
	dest := *out
	if dest == "" {
		dest = fs.Arg(0)
	}
	if *traceOut != "" {
		if err := writeTraceFile(min, *traceOut); err != nil {
			return fail(err)
		}
	}
	return writeReplay(min, dest)
}

func cmdTrace(args []string) int {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("o", "", "output JSONL file (default: stdout)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: drshrink trace [-o run.jsonl] <run.dsr>")
		return 2
	}
	r, err := dst.Load(fs.Arg(0))
	if err != nil {
		return fail(err)
	}
	if *out != "" {
		if err := writeTraceFile(r, *out); err != nil {
			return fail(err)
		}
		return 0
	}
	if _, err := dst.WriteTrace(r, os.Stdout); err != nil {
		return fail(err)
	}
	return 0
}

func cmdSearch(args []string) int {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	proto, n, t, l, b, seed := modelFlags(fs)
	strategies := fs.Int("strategies", 32, "strategy programs to try")
	schedules := fs.Int("schedules", 8, "random schedules per strategy and faulty set")
	budget := fs.Duration("budget", 0, "wall-clock time box (0 = none)")
	maxFindings := fs.Int("max-findings", 0, "stop after this many findings (0 = all)")
	outDir := fs.String("out-dir", "", "write one .dsr (and .jsonl trace) per finding here")
	noShrink := fs.Bool("no-shrink", false, "skip minimizing findings")
	hardenRerun := fs.Bool("harden", false,
		"re-run every finding under the hardening supervisor; findings it corrects pass, ones it misses fail the command")
	expectFinding := fs.Bool("expect-finding", false,
		"positive control: fail if the search finds nothing (use against *-weak protocols)")
	srcPlan := fs.String("source-faults", "",
		`layer a source fault plan on every searched run, e.g. "fail=0.2,outage=1..3,seed=6"`)
	churnSpec := fs.String("churn", "",
		"comma-separated crash-rejoin churn peers as peer:point[:rejoin(0|1)], e.g. 3:3:1")
	fs.Parse(args)

	churn, err := parseChurn(*churnSpec)
	if err != nil {
		return fail(err)
	}
	opts := dst.SearchOptions{
		Protocol: *proto,
		N:        *n, T: *t, L: *l, MsgBits: *b,
		Seed:       *seed,
		Strategies: *strategies, Schedules: *schedules,
		MaxFindings: *maxFindings,
		Shrink:      !*noShrink,
		SourcePlan:  *srcPlan,
		Churn:       churn,
		Log:         func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
	}
	if *budget > 0 {
		opts.Deadline = time.Now().Add(*budget)
	}
	rep, err := dst.Search(opts)
	if err != nil {
		return fail(err)
	}
	status := ""
	if rep.TimedOut {
		status = " (time box hit)"
	}
	fmt.Printf("search: %s: %d runs, %d findings in %s%s\n",
		rep.Protocol, rep.Runs, len(rep.Findings), rep.Elapsed.Round(time.Millisecond), status)
	uncorrected := 0
	for i, f := range rep.Findings {
		fmt.Printf("finding %d: %s -> %v\n", i, f.Strategy, f.Failures)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return fail(err)
			}
			base := filepath.Join(*outDir, fmt.Sprintf("%s-finding-%02d", rep.Protocol, i))
			if err := f.Replay.Save(base + ".dsr"); err != nil {
				return fail(err)
			}
			if err := writeTraceFile(f.Replay, base+".jsonl"); err != nil {
				return fail(err)
			}
			fmt.Printf("  wrote %s.dsr and %s.jsonl\n", base, base)
		}
		if *hardenRerun {
			chk, err := dst.CheckHardened(f.Replay, nil, harden.Policy{})
			if err != nil {
				return fail(err)
			}
			fmt.Printf("  hardened: detected=%v corrected=%v final-correct=%v ladder=%v Q=%d\n",
				chk.Detected, chk.Corrected, chk.FinalCorrect, chk.Outcome.Escalations(), chk.Outcome.Q)
			if !chk.Ok() {
				uncorrected++
			}
		}
	}
	if *expectFinding && len(rep.Findings) == 0 {
		fmt.Fprintln(os.Stderr, "drshrink: search found nothing but -expect-finding was set (positive control failed)")
		return 1
	}
	if *hardenRerun {
		if uncorrected > 0 {
			fmt.Fprintf(os.Stderr, "drshrink: hardening failed to correct %d of %d findings\n", uncorrected, len(rep.Findings))
			return 1
		}
		return 0
	}
	if len(rep.Findings) > 0 {
		return 1
	}
	return 0
}

func applyFaults(r *dst.Replay, crash, program string, byzSeed int64, faulty string) error {
	if crash != "" && program != "" {
		return fmt.Errorf("-crash and -byz are mutually exclusive")
	}
	if crash == "" && program == "" {
		if faulty != "" {
			return fmt.Errorf("-faulty requires -crash or -byz")
		}
		return nil
	}
	ids, err := parseFaulty(faulty, r.T)
	if err != nil {
		return err
	}
	r.Faulty = ids
	if crash != "" {
		r.Fault = dst.FaultCrash
		pts, err := parseCrash(crash)
		if err != nil {
			return err
		}
		r.CrashPoints = pts
		return nil
	}
	ops, err := dst.ParseOps(program)
	if err != nil {
		return err
	}
	r.Fault = dst.FaultByzantine
	r.Strategy = &dst.Strategy{Seed: byzSeed, Ops: ops}
	return nil
}

func parseFaulty(s string, t int) ([]int, error) {
	if s == "" {
		ids := make([]int, t)
		for i := range ids {
			ids[i] = i
		}
		return ids, nil
	}
	var ids []int
	for _, part := range splitComma(s) {
		var id int
		if _, err := fmt.Sscanf(part, "%d", &id); err != nil {
			return nil, fmt.Errorf("bad faulty id %q", part)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func parseCrash(s string) ([]dst.CrashPoint, error) {
	var pts []dst.CrashPoint
	for _, part := range splitComma(s) {
		var peer, point int
		if _, err := fmt.Sscanf(part, "%d:%d", &peer, &point); err != nil {
			return nil, fmt.Errorf("bad crash spec %q (want peer:point)", part)
		}
		pts = append(pts, dst.CrashPoint{Peer: peer, Point: point})
	}
	return pts, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func expectLabel(r *dst.Replay) string {
	if r.Expect == "" {
		return dst.ExpectViolation
	}
	return r.Expect
}

func printOutcome(proto string, o *dst.Outcome) {
	verdict := "CORRECT"
	switch {
	case o.Result.Deadlocked:
		verdict = "DEADLOCK"
	case o.Result.EventCapHit:
		verdict = "EVENT CAP"
	case !o.Result.Correct:
		verdict = "VIOLATION"
	}
	fmt.Printf("%s: %s  Q=%d msgs=%d bits=%d events=%d hash=%s\n",
		proto, verdict, o.Result.Q, o.Result.Msgs, o.Result.MsgBits, o.Steps,
		dst.HashString(o.EventHash))
	for _, f := range o.Result.Failures {
		fmt.Printf("  failure: %s\n", f)
	}
}

func writeReplay(r *dst.Replay, path string) int {
	if path == "" {
		b, err := r.Marshal()
		if err != nil {
			return fail(err)
		}
		os.Stdout.Write(b)
		return 0
	}
	if err := r.Save(path); err != nil {
		return fail(err)
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

func writeTraceFile(r *dst.Replay, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := dst.WriteTrace(r, f); err != nil {
		return err
	}
	return f.Close()
}

// parseChurn parses peer:point[:rejoin] specs, comma-separated.
func parseChurn(s string) ([]dst.ChurnPoint, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []dst.ChurnPoint
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("drshrink: churn spec %q: want peer:point[:rejoin]", part)
		}
		cp := dst.ChurnPoint{Rejoin: true}
		var err error
		if cp.Peer, err = strconv.Atoi(fields[0]); err != nil {
			return nil, fmt.Errorf("drshrink: churn spec %q: bad peer: %v", part, err)
		}
		if cp.Point, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("drshrink: churn spec %q: bad point: %v", part, err)
		}
		if len(fields) == 3 {
			r, err := strconv.Atoi(fields[2])
			if err != nil || (r != 0 && r != 1) {
				return nil, fmt.Errorf("drshrink: churn spec %q: rejoin must be 0 or 1", part)
			}
			cp.Rejoin = r == 1
		}
		out = append(out, cp)
	}
	return out, nil
}
