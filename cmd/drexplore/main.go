// Command drexplore runs the bounded-exhaustive schedule explorer: it
// enumerates every delivery order of a small configuration up to a chosen
// decision depth and reports failures/deadlocks with a replayable witness.
//
// Example:
//
//	drexplore -protocol crash1 -n 3 -L 12 -crash 0:6 -depth 6
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/download"
	"repro/internal/explore"
	"repro/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		protocol = flag.String("protocol", "crash1", "protocol to explore")
		n        = flag.Int("n", 3, "peers (keep tiny: the tree is exponential)")
		tf       = flag.Int("t", 1, "fault bound")
		l        = flag.Int("L", 12, "input bits")
		seed     = flag.Int64("seed", 1, "input/coins seed")
		depth    = flag.Int("depth", 6, "explored decision depth")
		budget   = flag.Int("budget", 500000, "max executions")
		crash    = flag.String("crash", "", "crash points, e.g. 0:6,2:10 (peer:actions)")
	)
	flag.Parse()

	factory, err := download.Protocol(*protocol).Factory()
	if err != nil {
		fmt.Fprintf(os.Stderr, "drexplore: %v\n", err)
		return 2
	}
	points := map[sim.PeerID]int{}
	if *crash != "" {
		for _, part := range strings.Split(*crash, ",") {
			kv := strings.SplitN(strings.TrimSpace(part), ":", 2)
			if len(kv) != 2 {
				fmt.Fprintf(os.Stderr, "drexplore: bad -crash entry %q\n", part)
				return 2
			}
			p, err1 := strconv.Atoi(kv[0])
			pt, err2 := strconv.Atoi(kv[1])
			if err1 != nil || err2 != nil {
				fmt.Fprintf(os.Stderr, "drexplore: bad -crash entry %q\n", part)
				return 2
			}
			points[sim.PeerID(p)] = pt
		}
	}

	rep, err := explore.Run(explore.Config{
		N: *n, T: *tf, L: *l, Seed: *seed,
		NewPeer:     factory,
		CrashPoints: points,
		MaxChoices:  *depth,
		Budget:      *budget,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "drexplore: %v\n", err)
		return 2
	}
	fmt.Printf("%s n=%d t=%d L=%d depth=%d crash=%v\n", *protocol, *n, *tf, *l, *depth, points)
	fmt.Println(rep)
	if rep.FirstBad != nil {
		fmt.Printf("first failing schedule prefix: %v\n", rep.FirstBad)
	}
	if !rep.Ok() {
		return 1
	}
	return 0
}
