package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// TestRunSmallLoad is the CLI smoke test: a small run must exit 0, write
// a valid LOAD_ artifact, and record a reply for every query.
func TestRunSmallLoad(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	code := run([]string{
		"-clients", "500", "-conns", "4", "-shards", "2", "-queries", "2",
		"-L", "256", "-window", "64", "-out", dir,
		"-slo-p99", "60000", "-slo-zero-drop",
	}, &b)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, b.String())
	}
	path, f, err := benchfmt.LatestLoad(dir)
	if err != nil || f == nil {
		t.Fatalf("no LOAD artifact in %s: %v", dir, err)
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("artifact landed in %s", path)
	}
	if f.Queries != 1000 || f.Replies != 1000 || f.Dropped != 0 {
		t.Fatalf("queries=%d replies=%d dropped=%d", f.Queries, f.Replies, f.Dropped)
	}
	if f.P99Ms <= 0 || f.ThroughputQPS <= 0 {
		t.Fatalf("empty measurements: %+v", f)
	}
	if len(f.ShardStats) != 2 {
		t.Fatalf("shard stats: %+v", f.ShardStats)
	}
}

// TestRunSLOBreachExitCode pins the CI contract: an impossible p99 SLO
// must exit 3, drbench's regression code, and still write the artifact.
func TestRunSLOBreachExitCode(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	code := run([]string{
		"-clients", "100", "-conns", "2", "-shards", "1",
		"-L", "128", "-out", dir,
		"-slo-p99", "0.000001",
	}, &b)
	if code != 3 {
		t.Fatalf("exit %d, want 3:\n%s", code, b.String())
	}
	if !strings.Contains(b.String(), "SLO BREACH") {
		t.Fatalf("no breach report:\n%s", b.String())
	}
	if _, f, err := benchfmt.LatestLoad(dir); err != nil || f == nil {
		t.Fatalf("breached run wrote no artifact: %v", err)
	}
}

// TestRunBadFlagsExitCode pins flag errors to exit 2.
func TestRunBadFlagsExitCode(t *testing.T) {
	var b strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &b); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
