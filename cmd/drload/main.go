// Command drload is the scale gate: it starts one sharded netrt hub and
// drives a fleet of simulated clients against it, measuring closed-loop
// source-query latency and throughput. Logical clients are multiplexed
// over a small number of TCP connections (the client id rides in the
// query tag), so 100k–1M clients run in one process without 1M sockets.
//
// The run is recorded as a schema-versioned LOAD_<timestamp>.json
// (internal/benchfmt) holding p50/p90/p99/max latency, throughput, the
// drop count, and the hub's per-shard robustness counters. SLO flags turn
// the measurement into a CI gate: -slo-p99 bounds p99 latency and
// -slo-zero-drop requires every query answered; a breach exits 3
// (drbench's regression convention), operational failures exit 1.
//
// Examples:
//
//	drload -clients 100000 -conns 32 -shards 8
//	drload -clients 50000 -slo-p99 250 -slo-zero-drop -out artifacts/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/netrt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("drload", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		clients = fs.Int("clients", 100000, "simulated logical clients")
		conns   = fs.Int("conns", 32, "TCP connections the clients multiplex over")
		shards  = fs.Int("shards", 8, "hub listener shards")
		queue   = fs.Int("queue", 1024, "per-shard outbound queue bound (frames)")
		queries = fs.Int("queries", 1, "queries per client (closed loop)")
		qbits   = fs.Int("qbits", 8, "bits requested per query")
		window  = fs.Int("window", 256, "in-flight clients per connection")
		l       = fs.Int("L", 4096, "source input bits")
		msgBits = fs.Int("b", 64, "message size bits")
		seed    = fs.Int64("seed", 1, "input array seed")
		timeout = fs.Duration("timeout", 120*time.Second, "whole-run deadline")
		out     = fs.String("out", ".", "directory for the LOAD_*.json artifact")
		label   = fs.String("label", "", "label recorded in the artifact")
		sloP99  = fs.Float64("slo-p99", 0, "fail (exit 3) when p99 latency exceeds this many milliseconds; 0 disables")
		sloZero = fs.Bool("slo-zero-drop", false, "fail (exit 3) when any query goes unanswered")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	hub, err := netrt.StartHub(netrt.Config{
		N: *conns, L: *l, MsgBits: *msgBits, Seed: *seed,
		Shards: *shards, ShardQueue: *queue,
	})
	if err != nil {
		fmt.Fprintf(stdout, "drload: %v\n", err)
		return 1
	}
	defer hub.Close()

	fmt.Fprintf(stdout, "drload: %d clients over %d conns, %d shards, %d queries/client\n",
		*clients, *conns, *shards, *queries)
	res, err := hub.GenerateLoad(netrt.LoadSpec{
		Clients: *clients, Conns: *conns,
		QueriesPerClient: *queries, BitsPerQuery: *qbits,
		Window: *window, Timeout: *timeout,
	})
	if err != nil {
		fmt.Fprintf(stdout, "drload: %v\n", err)
		return 1
	}

	file := &benchfmt.LoadFile{
		Label:   *label,
		Clients: *clients, Conns: *conns, Shards: *shards,
		QueriesPerClient: *queries, BitsPerQuery: *qbits,
		L: *l, MsgBits: *msgBits, Seed: *seed,
		DurationSec: res.Duration.Seconds(),
		Queries:     res.Queries,
		Replies:     res.Replies,
		Dropped:     res.Queries - res.Replies,
		P50Ms:       res.Percentile(50),
		P90Ms:       res.Percentile(90),
		P99Ms:       res.Percentile(99),
		MaxMs:       res.Percentile(100),
	}
	if res.Duration > 0 {
		file.ThroughputQPS = float64(res.Replies) / res.Duration.Seconds()
	}
	for _, s := range hub.ShardStats() {
		file.ShardStats = append(file.ShardStats, benchfmt.LoadShard{
			Enqueued: s.Enqueued, Written: s.Written, Dropped: s.Dropped,
			Blocked: s.Blocked, WriteErrs: s.WriteErrs, Flushes: s.Flushes,
		})
	}

	path, err := benchfmt.WriteLoad(*out, file)
	if err != nil {
		fmt.Fprintf(stdout, "drload: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%d/%d replies in %.2fs (%.0f q/s)  p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms\n",
		file.Replies, file.Queries, file.DurationSec, file.ThroughputQPS,
		file.P50Ms, file.P90Ms, file.P99Ms, file.MaxMs)
	if res.TimedOut {
		fmt.Fprintf(stdout, "drload: run hit the %v deadline; %d queries unanswered\n", *timeout, file.Dropped)
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)

	slo := benchfmt.LoadSLO{MaxP99Ms: *sloP99, EnforceDrops: *sloZero}
	if v := file.CheckSLO(slo); len(v) > 0 {
		fmt.Fprintf(stdout, "SLO BREACH:\n")
		for _, s := range v {
			fmt.Fprintf(stdout, "  %s\n", s)
		}
		return 3
	}
	if *sloP99 > 0 || *sloZero {
		fmt.Fprintf(stdout, "SLO ok (p99 <= %.0fms, zero-drop=%v)\n", *sloP99, *sloZero)
	}
	return 0
}
