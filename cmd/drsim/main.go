// Command drsim runs a single Download execution in the DR-model
// simulator and prints its complexity report.
//
// Examples:
//
//	drsim -list
//	drsim -protocol crashk -n 32 -t 24 -L 65536 -behavior crash-random
//	drsim -protocol committee -n 16 -t 7 -L 4096 -behavior liar -v
//	drsim -protocol twocycle -n 256 -t 64 -L 16384 -behavior liar -live
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/download"
	"repro/internal/harden"
	"repro/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list     = flag.Bool("list", false, "list protocols and exit")
		protocol = flag.String("protocol", "crashk", "protocol to run")
		n        = flag.Int("n", 16, "number of peers")
		t        = flag.Int("t", 4, "fault bound t")
		l        = flag.Int("L", 4096, "input length in bits")
		b        = flag.Int("b", 0, "message size in bits (0: max(64, L/n))")
		seed     = flag.Int64("seed", 1, "simulation seed")
		faulty   = flag.Int("faulty", 0, "actually faulty peers (0: t when behavior set)")
		behavior = flag.String("behavior", "", "fault behavior: crash|crash-random|silent|spam|liar|equivocate")
		excess   = flag.Bool("allow-excess", false, "permit -faulty above -t (model a violated fault bound; pair with -harden)")
		hardened = flag.Bool("harden", false, "run under the hardening supervisor (detect violations, audit outputs, escalate toward naive)")
		deadline = flag.Float64("deadline", 0, "cut the run off after this many time units (0: none)")
		srcPlan  = flag.String("source-faults", "", `seeded source fault plan, e.g. "fail=0.25,outage=2..5,seed=7" (des and TCP runtimes)`)
		mirrors  = flag.String("mirrors", "", `untrusted mirror fleet plan, e.g. "mirrors=5,byz=3,behavior=mixed,seed=7" (all runtimes; Merkle-verified replies, authoritative fallback)`)
		liveRT   = flag.Bool("live", false, "run on the concurrent goroutine runtime")
		tcpRT    = flag.Bool("tcp", false, "run over real TCP sockets (crash-from-start faults only)")
		verbose  = flag.Bool("v", false, "print per-peer stats")
		trace    = flag.Bool("trace", false, "print event trace to stderr")
		traceOut = flag.String("tracejson", "", "write a structured JSONL event trace to this file")

		obsAddr = flag.String("obs", "", "serve observability endpoints (/metrics, /snapshot.json, /timeline.jsonl, /debug/vars, /debug/pprof) on this address, e.g. :9090")
		obsHold = flag.Duration("obs-linger", 0, "keep the -obs server alive this long after the run so endpoints can be scraped")
		metOut  = flag.String("metrics-out", "", "write a JSON metrics snapshot to this file after the run")
		tlOut   = flag.String("timeline-out", "", "write a drtrace-compatible JSONL timeline to this file after the run")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %-14s %-11s %-22s %-20s %s\n",
			"PROTOCOL", "DETERMINISM", "FAULTS", "RESILIENCE", "QUERY", "SOURCE")
		for _, info := range download.Protocols() {
			fmt.Printf("%-12s %-14s %-11s %-22s %-20s %s\n",
				info.Protocol, info.Determinism, info.FaultModel,
				info.Resilience, info.Query, info.Theorem)
		}
		return 0
	}

	opts := download.Options{
		Protocol: download.Protocol(*protocol),
		N:        *n, T: *t, L: *l, MsgBits: *b,
		Seed:              *seed,
		Faulty:            *faulty,
		Behavior:          download.FaultBehavior(*behavior),
		AllowExcessFaults: *excess,
		Deadline:          *deadline,
		SourceFaults:      *srcPlan,
		Mirrors:           *mirrors,
		Live:              *liveRT,
		TCP:               *tcpRT,
	}
	if *trace {
		opts.Trace = os.Stderr
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			return 2
		}
		defer f.Close()
		opts.TraceJSONL = f
	}
	var (
		reg *obs.Registry
		tl  *obs.Timeline
	)
	if *obsAddr != "" || *metOut != "" || *tlOut != "" {
		reg = obs.New()
		tl = obs.NewTimeline()
		opts.Metrics, opts.Timeline = reg, tl
	}
	var srv *obs.Server
	if *obsAddr != "" {
		var err error
		srv, err = obs.Serve(*obsAddr, reg, tl)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "drsim: observability on http://%s/\n", srv.Addr)
	}
	var (
		rep *download.Report
		err error
	)
	if *hardened {
		rep, err = download.RunHardened(opts, harden.Policy{AttemptDeadline: *deadline})
	} else {
		rep, err = download.Run(opts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
		return 2
	}

	fmt.Printf("protocol    %s  (n=%d t=%d L=%d seed=%d behavior=%q)\n",
		*protocol, *n, *t, *l, *seed, *behavior)
	fmt.Printf("correct     %v\n", rep.Correct)
	fmt.Printf("Q           %d bits/peer (max over honest; avg %.1f; naive would be %d)\n",
		rep.Q, rep.AvgQ, *l)
	fmt.Printf("messages    %d (%d payload bits)\n", rep.Msgs, rep.MsgBits)
	fmt.Printf("time        %.2f (virtual units; 1 = max network latency)\n", rep.Time)
	if *mirrors != "" || rep.MirrorHits > 0 || rep.ProofFailures > 0 {
		fmt.Printf("mirrors     %d verified hits, %d proof failures, %d fallback queries (only verified bits charge into Q)\n",
			rep.MirrorHits, rep.ProofFailures, rep.FallbackQueries)
	}
	if *srcPlan != "" || rep.SourceFailures > 0 {
		fmt.Printf("source      %d failures, %d retries, %d breaker opens, %d deferred queries\n",
			rep.SourceFailures, rep.SourceRetries, rep.BreakerOpens, rep.DeferredQueries)
		fmt.Printf("            degraded %.2f time units (worst peer); %d churn rejoins\n",
			rep.DegradedTime, rep.Rejoins)
	}
	for _, f := range rep.Failures {
		fmt.Printf("FAILURE     %s\n", f)
	}
	if h := rep.Hardening; h != nil {
		fmt.Printf("hardening   detected=%v corrected=%v ladder=%v\n", h.Detected, h.Corrected, h.Ladder)
		fmt.Printf("            audit %d bits (in Q), warm cache served %d bits free\n", h.AuditBits, h.WarmHitBits)
		for i, a := range h.Attempts {
			fmt.Printf("attempt %d   %-10s violations=%d audited=%d peers\n", i, a.Protocol, len(a.Violations), a.AuditedPeers)
			for _, v := range a.Violations {
				fmt.Printf("            ! %s\n", v)
			}
		}
	}
	if *verbose {
		fmt.Printf("%-5s %-7s %-8s %-11s %-10s %s\n",
			"PEER", "HONEST", "CRASHED", "TERMINATED", "QUERYBITS", "MSGS")
		for _, p := range rep.PerPeer {
			fmt.Printf("%-5d %-7v %-8v %-11v %-10d %d\n",
				p.ID, p.Honest, p.Crashed, p.Terminated, p.QueryBits, p.MsgsSent)
		}
	}
	if *metOut != "" {
		if err := writeMetricsSnapshot(*metOut, reg); err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			return 2
		}
	}
	if *tlOut != "" {
		if err := writeTimeline(*tlOut, tl); err != nil {
			fmt.Fprintf(os.Stderr, "drsim: %v\n", err)
			return 2
		}
	}
	if srv != nil && *obsHold > 0 {
		fmt.Fprintf(os.Stderr, "drsim: lingering %v on http://%s/ (metrics frozen)\n", *obsHold, srv.Addr)
		time.Sleep(*obsHold)
	}
	if !rep.Correct {
		return 1
	}
	return 0
}

// writeMetricsSnapshot dumps the registry as indented JSON.
func writeMetricsSnapshot(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(reg.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTimeline dumps the timeline as drtrace-compatible JSONL.
func writeTimeline(path string, tl *obs.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tl.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
