package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/bitarray"
	"repro/internal/merkle"
)

// merkleCell is one proof-verify micro-benchmark row: decode + verify a
// fixed set of sub-range proofs against a committed root, exactly the
// per-reply work a peer does for every mirror answer. The pipeline's
// regression gate guards its allocs/op (the mirror tier's hot path must
// stay allocation-lean) and pins the proof geometry through the paper
// metrics: query_q = bits verified per op, msgs = proof hashes consumed
// per op. Either drifting means the commitment or codec changed shape,
// which must be an explicit decision (commit a new baseline).
type merkleCell struct {
	name     string
	l        int      // committed input bits
	leafBits int      // commitment leaf granularity
	spans    [][2]int // [leafLo, leafHi) ranges verified per op
}

// merkleCells mirrors the two mirror-reply shapes that matter: narrow
// single-leaf proofs (deep audit spot-checks) and wide span proofs
// (bulk sub-range retrieval). Full mode uses the Table-1 input scale.
func merkleCells(quick bool) []merkleCell {
	l, leafBits := 1<<14, 64
	if quick {
		l, leafBits = 1<<12, 32
	}
	leaves := l / leafBits
	return []merkleCell{
		{
			name: "mverify-leaf", l: l, leafBits: leafBits,
			spans: [][2]int{
				{0, 1}, {1, 2}, {leaves / 4, leaves/4 + 1}, {leaves / 2, leaves/2 + 1},
				{leaves - 2, leaves - 1}, {leaves - 1, leaves}, {7, 8}, {leaves - 7, leaves - 6},
			},
		},
		{
			name: "mverify-span", l: l, leafBits: leafBits,
			spans: [][2]int{
				{0, leaves / 4}, {leaves / 4, leaves / 2},
				{leaves / 3, 2 * leaves / 3}, {leaves - leaves/4, leaves},
			},
		},
	}
}

// measureMerkle times reps decode+verify passes over the cell's spans.
// Proofs are built and encoded once up front; the timed loop measures
// only what a peer pays per proof-carrying reply: DecodeProof on the
// wire bytes, then Verify against the pinned root.
func measureMerkle(c merkleCell, seed int64, iters int) (benchfmt.Row, error) {
	x := bitarray.Random(rand.New(rand.NewSource(seed)), c.l)
	tree := merkle.Build(x, c.leafBits)
	root, p := tree.Root(), tree.Params()

	bits := make([]*bitarray.Array, len(c.spans))
	encoded := make([][]byte, len(c.spans))
	var qBits, hashes int
	for i, sp := range c.spans {
		lo, hi := sp[0], sp[1]
		n := p.SpanBits(lo, hi)
		bits[i] = x.Slice(lo*c.leafBits, n)
		pr := tree.Prove(lo, hi)
		encoded[i] = pr.AppendTo(nil)
		qBits += n
		hashes += len(pr.Hashes)
	}

	// One op = the full span set; reps amortizes memstats noise for what
	// is a microsecond-scale operation.
	const reps = 256
	n := reps * iters
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for r := 0; r < n; r++ {
		for i, sp := range c.spans {
			pr, rest, ok := merkle.DecodeProof(encoded[i])
			if !ok || len(rest) != 0 {
				return benchfmt.Row{}, fmt.Errorf("%s: proof round-trip broke", c.name)
			}
			if !merkle.Verify(root, p, sp[0], sp[1], bits[i], pr) {
				return benchfmt.Row{}, fmt.Errorf("%s: genuine proof rejected", c.name)
			}
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	fn := float64(n)
	return benchfmt.Row{
		Name:        c.name,
		NsPerOp:     float64(elapsed.Nanoseconds()) / fn,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / fn,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / fn,
		QueryQ:      float64(qBits),
		AvgQ:        float64(qBits),
		Msgs:        float64(hashes),
		VTime:       0,
	}, nil
}
