// Command drbench regenerates the paper's evaluation: Table 1 and every
// per-theorem experiment and ablation listed in DESIGN.md / EXPERIMENTS.md.
//
// Examples:
//
//	drbench -list
//	drbench -suite all
//	drbench -suite T1,E2,E7 -quick
//	drbench -suite E10 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		suite = flag.String("suite", "all", "comma-separated experiment IDs, or 'all'")
		quick = flag.Bool("quick", false, "reduced sizes for a fast smoke run")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		seed  = flag.Int64("seed", 7, "suite seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var selected []experiments.Experiment
	if strings.EqualFold(*suite, "all") {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*suite, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "drbench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	failures := 0
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drbench: %s failed: %v\n", e.ID, err)
			failures++
			continue
		}
		if *csv {
			table.CSV(os.Stdout)
		} else {
			table.Fprint(os.Stdout)
			fmt.Printf("  [%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}
