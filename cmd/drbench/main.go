// Command drbench regenerates the paper's evaluation: Table 1 and every
// per-theorem experiment and ablation listed in DESIGN.md / EXPERIMENTS.md.
// With -bench it instead runs the reproducible benchmark pipeline: measure
// every Table-1 cell, write a schema-versioned BENCH_<timestamp>.json, and
// diff it against a baseline, failing (exit 3) on regressions past the
// thresholds. See docs/PERF.md.
//
// Examples:
//
//	drbench -list
//	drbench -suite all
//	drbench -suite T1,E2,E7 -quick
//	drbench -suite E10 -csv
//	drbench -bench -quick -out bench
//	drbench -bench -baseline bench/BENCH_20260805T000000Z.json -max-allocs-growth 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		list  = flag.Bool("list", false, "list experiments and exit")
		suite = flag.String("suite", "all", "comma-separated experiment IDs, or 'all'")
		quick = flag.Bool("quick", false, "reduced sizes for a fast smoke run")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		seed  = flag.Int64("seed", 7, "suite seed")

		bench     = flag.Bool("bench", false, "run the benchmark pipeline instead of experiments")
		out       = flag.String("out", "bench", "pipeline: directory for BENCH_*.json output")
		baseline  = flag.String("baseline", "", "pipeline: baseline file or directory (default: newest BENCH_*.json in -out)")
		label     = flag.String("label", "", "pipeline: label recorded in the output file")
		iters     = flag.Int("iters", 1, "pipeline: measured iterations per cell")
		parallel  = flag.Int("parallel", 1, "pipeline: workers for the metric sweep (deterministic at any value)")
		maxNs     = flag.Float64("max-ns-growth", 0.50, "pipeline: allowed fractional ns/op growth vs baseline")
		maxAllocs = flag.Float64("max-allocs-growth", 0.10, "pipeline: allowed fractional allocs/op growth vs baseline")
		withObs   = flag.Bool("obs", false, "pipeline: collect an observability snapshot from the metric sweep and embed it in the BENCH_*.json")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return 0
	}

	if *bench {
		return runPipeline(pipelineConfig{
			out: *out, baseline: *baseline, label: *label,
			quick: *quick, seed: *seed, iters: *iters, parallel: *parallel, obs: *withObs,
			thresholds: benchfmt.Thresholds{MaxNsGrowth: *maxNs, MaxAllocsGrowth: *maxAllocs},
		})
	}

	var selected []experiments.Experiment
	if strings.EqualFold(*suite, "all") {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*suite, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "drbench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	failures := 0
	for _, e := range selected {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drbench: %s failed: %v\n", e.ID, err)
			failures++
			continue
		}
		if *csv {
			table.CSV(os.Stdout)
		} else {
			table.Fprint(os.Stdout)
			fmt.Printf("  [%s completed in %.1fs]\n\n", e.ID, time.Since(start).Seconds())
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

type pipelineConfig struct {
	out, baseline, label string
	quick, obs           bool
	seed                 int64
	iters, parallel      int
	thresholds           benchfmt.Thresholds
}

// runPipeline measures every Table-1 cell and gates on the baseline diff.
//
// The paper metrics come from a sweep pass (parallelizable, deterministic);
// the simulator costs come from a serial pass timed around the same cells,
// so numbers aren't polluted by co-running goroutines. The serial pass
// re-derives the metrics and cross-checks them against the sweep's — a
// free end-to-end determinism check on every pipeline run.
func runPipeline(cfg pipelineConfig) int {
	mode := "full"
	if cfg.quick {
		mode = "quick"
	}
	if cfg.iters < 1 {
		cfg.iters = 1
	}
	cells := experiments.BenchCells(experiments.Config{Seed: cfg.seed, Quick: cfg.quick})

	// Metric pass. With -obs, all cells share one registry (concurrency-
	// safe), so the snapshot aggregates the whole sweep. The timed serial
	// pass below deliberately runs without metrics: its allocs/op and
	// ns/op feed the regression gate and must measure the disabled path.
	var reg *obs.Registry
	if cfg.obs {
		reg = obs.New()
	}
	var sweepCells []sweep.Cell
	for _, c := range cells {
		spec := c.Spec(cfg.seed)
		if reg != nil {
			spec.Metrics = reg
			spec.Label = c.Name
		}
		sweepCells = append(sweepCells, sweep.Cell{Name: c.Name, Spec: spec})
	}
	metricRes, err := sweep.Run(sweepCells, sweep.Options{Workers: cfg.parallel})
	if err != nil {
		fmt.Fprintf(os.Stderr, "drbench: metric sweep: %v\n", err)
		return 1
	}

	// Cost pass: serial, timed, allocation-counted via memstats deltas.
	file := &benchfmt.File{
		Label: cfg.label, Mode: mode, Seed: cfg.seed, Iters: cfg.iters,
		Note:    fmt.Sprintf("generated by drbench -bench on %s/%s", runtime.GOOS, runtime.GOARCH),
		Metrics: reg.Snapshot(),
	}
	for i, c := range cells {
		row, res, err := measure(c, cfg.seed, cfg.iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drbench: %s: %v\n", c.Name, err)
			return 1
		}
		m := metricRes[i]
		if res.Q != m.Q || res.Msgs != m.Msgs || res.Time != m.Time || res.AvgQ() != m.AvgQ() {
			fmt.Fprintf(os.Stderr, "drbench: %s: serial and sweep runs disagree (Q %d vs %d, msgs %d vs %d) — determinism broken\n",
				c.Name, res.Q, m.Q, res.Msgs, m.Msgs)
			return 1
		}
		file.Rows = append(file.Rows, row)
	}

	// Proof-verify micro rows: the mirror tier's per-reply decode+verify
	// cost, gated on allocs/op like every other cell (see merkle.go).
	for _, mc := range merkleCells(cfg.quick) {
		row, err := measureMerkle(mc, cfg.seed, cfg.iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drbench: %s: %v\n", mc.name, err)
			return 1
		}
		file.Rows = append(file.Rows, row)
	}

	path, err := benchfmt.Write(cfg.out, file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drbench: %v\n", err)
		return 1
	}
	printRows(file)
	fmt.Printf("wrote %s\n", path)

	base, basePath, err := resolveBaseline(cfg.baseline, cfg.out, path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drbench: baseline: %v\n", err)
		return 1
	}
	if base == nil {
		fmt.Println("no baseline found; skipping comparison")
		return 0
	}
	regs, err := benchfmt.Compare(base, file, cfg.thresholds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drbench: compare vs %s: %v\n", basePath, err)
		return 1
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "REGRESSIONS vs %s:\n", basePath)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		return 3
	}
	fmt.Printf("no regressions vs %s (ns +%.0f%%, allocs +%.0f%% allowed; paper metrics exact)\n",
		basePath, 100*cfg.thresholds.MaxNsGrowth, 100*cfg.thresholds.MaxAllocsGrowth)
	return 0
}

// measure runs one cell iters times on the des runtime, returning mean
// wall time and allocation counts per run plus the (deterministic) result.
func measure(c experiments.BenchCell, seed int64, iters int) (benchfmt.Row, *sim.Result, error) {
	var last *sim.Result
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		res, err := des.New().Run(c.Spec(seed))
		if err != nil {
			return benchfmt.Row{}, nil, err
		}
		if !res.Correct {
			return benchfmt.Row{}, nil, fmt.Errorf("incorrect run: %v", res.Failures)
		}
		if last != nil && (res.Q != last.Q || res.Msgs != last.Msgs || res.Time != last.Time) {
			return benchfmt.Row{}, nil, fmt.Errorf("iterations disagree — determinism broken")
		}
		last = res
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := float64(iters)
	return benchfmt.Row{
		Name:        c.Name,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		QueryQ:      float64(last.Q),
		AvgQ:        last.AvgQ(),
		Msgs:        float64(last.Msgs),
		VTime:       last.Time,
	}, last, nil
}

// resolveBaseline picks the comparison target: an explicit file, the newest
// BENCH_*.json in an explicit directory, or the newest in the output
// directory other than the file just written.
func resolveBaseline(arg, outDir, justWrote string) (*benchfmt.File, string, error) {
	if arg != "" {
		if st, err := os.Stat(arg); err == nil && st.IsDir() {
			path, f, err := benchfmt.Latest(arg)
			return f, path, err
		}
		f, err := benchfmt.Load(arg)
		return f, arg, err
	}
	return latestExcept(outDir, justWrote)
}

func latestExcept(dir, except string) (*benchfmt.File, string, error) {
	// benchfmt.Latest would hand back the file this run just wrote; walk
	// down to the previous one instead.
	path, f, err := benchfmt.Latest(dir)
	if err != nil || f == nil {
		return nil, "", err
	}
	if path != except {
		return f, path, nil
	}
	// The just-written file is newest; look for an older sibling by
	// temporarily treating it as absent.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var best string
	for _, e := range entries {
		name := e.Name()
		full := filepath.Join(dir, name)
		if full == except || !strings.HasPrefix(name, benchfmt.FilePrefix) || !strings.HasSuffix(name, ".json") {
			continue
		}
		if name > best {
			best = name
		}
	}
	if best == "" {
		return nil, "", nil
	}
	full := filepath.Join(dir, best)
	f, err = benchfmt.Load(full)
	return f, full, err
}

func printRows(f *benchfmt.File) {
	fmt.Printf("%-12s %14s %14s %14s %8s %10s %8s %10s\n",
		"cell", "ns/op", "allocs/op", "B/op", "queryQ", "avgQ", "msgs", "vtime")
	for _, r := range f.Rows {
		fmt.Printf("%-12s %14.0f %14.0f %14.0f %8.0f %10.2f %8.0f %10.4f\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.QueryQ, r.AvgQ, r.Msgs, r.VTime)
	}
}
