// Command drtrace summarizes a structured execution trace produced by
// `drsim -tracejson <file>` (or download.Options.TraceJSONL): event
// counts by kind, message-type histogram with payload volumes, and a
// per-peer activity table.
//
// Example:
//
//	drsim -protocol crashk -n 16 -t 8 -L 8192 -behavior crash-random \
//	      -tracejson run.jsonl
//	drtrace run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	perPeer := flag.Bool("peers", false, "print the per-peer activity table")
	timeline := flag.Bool("timeline", false, "print per-peer ASCII event lanes")
	width := flag.Int("width", 72, "timeline width in columns")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: drtrace [-peers] [-timeline] <trace.jsonl>")
		return 2
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "drtrace: %v\n", err)
		return 2
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "drtrace: %v\n", err)
		return 2
	}
	s := trace.Analyze(events)
	s.Fprint(os.Stdout)

	if *timeline {
		fmt.Println()
		fmt.Print(trace.Timeline(events, *width))
	}

	if *perPeer {
		ids := make([]sim.PeerID, 0, len(s.PerPeer))
		for id := range s.PerPeer {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		fmt.Printf("\n%-5s %-7s %-9s %-8s %-10s %-8s %s\n",
			"PEER", "SENDS", "DELIVERS", "QUERIES", "QUERYBITS", "CRASHED", "TERMINATED@")
		for _, id := range ids {
			ps := s.PerPeer[id]
			term := "-"
			if ps.Terminated {
				term = fmt.Sprintf("%.2f", ps.TerminatedAt)
			}
			fmt.Printf("%-5d %-7d %-9d %-8d %-10d %-8v %s\n",
				id, ps.Sends, ps.Delivers, ps.Queries, ps.QueryBits, ps.Crashed, term)
		}
	}
	return 0
}
