// Command drconform runs the full conformance grid: every protocol
// against every compatible fault behavior across several seeds, on the
// deterministic runtime (and optionally the concurrent one), printing a
// pass/fail matrix. It is the library's smoke-screen for regressions that
// individual unit tests might miss.
//
// Example:
//
//	drconform -n 16 -L 2048 -seeds 5
//	drconform -live -seeds 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/download"
)

func main() {
	os.Exit(run())
}

// behaviorsFor returns the fault behaviors meaningful for a protocol's
// fault model, plus the failure-free baseline.
func behaviorsFor(info download.Info) []download.FaultBehavior {
	switch info.FaultModel {
	case "crash":
		return []download.FaultBehavior{
			download.NoFaults, download.CrashImmediate, download.CrashRandom,
		}
	case "byzantine":
		return []download.FaultBehavior{
			download.NoFaults, download.CrashRandom, download.Silent,
			download.Spam, download.Liar, download.Equivocate,
		}
	default: // "any"
		return []download.FaultBehavior{
			download.NoFaults, download.CrashImmediate, download.Silent,
			download.Spam, download.Liar,
		}
	}
}

// faultBoundFor picks the maximal T the protocol's resilience permits.
func faultBoundFor(info download.Info, n int) int {
	switch {
	case info.Protocol == download.Crash1:
		return 1
	case info.FaultModel == "crash":
		return 3 * n / 4
	case info.FaultModel == "byzantine":
		return n/2 - 1
	default:
		return n / 2
	}
}

func run() int {
	var (
		n      = flag.Int("n", 16, "peers")
		l      = flag.Int("L", 2048, "input bits")
		seeds  = flag.Int("seeds", 3, "seeds per cell")
		liveRT = flag.Bool("live", false, "also run the concurrent runtime")
	)
	flag.Parse()

	type cell struct {
		proto    download.Protocol
		behavior download.FaultBehavior
		pass     int
		fail     int
		lastFail string
	}
	var cells []*cell
	failures := 0

	runtimes := []bool{false}
	if *liveRT {
		runtimes = append(runtimes, true)
	}

	for _, info := range download.Protocols() {
		tBound := faultBoundFor(info, *n)
		for _, behavior := range behaviorsFor(info) {
			c := &cell{proto: info.Protocol, behavior: behavior}
			cells = append(cells, c)
			for seed := 0; seed < *seeds; seed++ {
				for _, live := range runtimes {
					rep, err := download.Run(download.Options{
						Protocol: info.Protocol,
						N:        *n, T: tBound, L: *l,
						Seed:     int64(seed),
						Behavior: behavior,
						Live:     live,
					})
					switch {
					case err != nil:
						c.fail++
						c.lastFail = err.Error()
					case !rep.Correct:
						c.fail++
						if len(rep.Failures) > 0 {
							c.lastFail = rep.Failures[0]
						}
					default:
						c.pass++
					}
				}
			}
			failures += c.fail
		}
	}

	name := func(b download.FaultBehavior) string {
		if b == download.NoFaults {
			return "(none)"
		}
		return string(b)
	}
	fmt.Printf("%-12s %-14s %-6s %-6s %s\n", "PROTOCOL", "BEHAVIOR", "PASS", "FAIL", "LAST FAILURE")
	for _, c := range cells {
		last := ""
		if c.fail > 0 {
			last = c.lastFail
		}
		fmt.Printf("%-12s %-14s %-6d %-6d %s\n", c.proto, name(c.behavior), c.pass, c.fail, last)
	}
	if failures > 0 {
		fmt.Printf("\nFAILED: %d cell-runs failed\n", failures)
		return 1
	}
	fmt.Printf("\nOK: %d cells, all runs correct\n", len(cells))
	return 0
}
