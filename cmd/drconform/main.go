// Command drconform runs the full conformance grid: every protocol
// against every compatible fault behavior across several seeds, printing
// a pass/fail matrix with one column per enabled runtime (deterministic,
// and optionally the concurrent and real-socket ones). It is the
// library's smoke-screen for regressions that individual unit tests might
// miss.
//
// Example:
//
//	drconform -n 16 -L 2048 -seeds 5
//	drconform -live -tcp -seeds 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/download"
	"repro/internal/harden"
)

func main() {
	os.Exit(run())
}

// behaviorsFor returns the fault behaviors meaningful for a protocol's
// fault model, plus the failure-free baseline.
func behaviorsFor(info download.Info) []download.FaultBehavior {
	switch info.FaultModel {
	case "crash":
		return []download.FaultBehavior{
			download.NoFaults, download.CrashImmediate, download.CrashRandom,
		}
	case "byzantine":
		return []download.FaultBehavior{
			download.NoFaults, download.CrashRandom, download.Silent,
			download.Spam, download.Liar, download.Equivocate,
		}
	default: // "any"
		return []download.FaultBehavior{
			download.NoFaults, download.CrashImmediate, download.Silent,
			download.Spam, download.Liar,
		}
	}
}

// faultBoundFor picks the maximal T the protocol's resilience permits.
func faultBoundFor(info download.Info, n int) int {
	switch {
	case info.Protocol == download.Crash1:
		return 1
	case info.FaultModel == "crash":
		return 3 * n / 4
	case info.FaultModel == "byzantine":
		return n/2 - 1
	default:
		return n / 2
	}
}

// runtimeSpec describes one runtime column of the grid.
type runtimeSpec struct {
	name   string
	live   bool
	tcp    bool
	source string // non-empty: des runtime with this source fault plan
}

// supports reports whether the runtime can execute the behavior: the
// real-socket runtime only injects crash-from-start faults (its richer
// fault repertoire — drops, flaps, partitions — lives in drchaos).
func (r runtimeSpec) supports(behavior download.FaultBehavior) bool {
	if !r.tcp {
		return true
	}
	return behavior == download.NoFaults || behavior == download.CrashImmediate
}

func run() int {
	var (
		n        = flag.Int("n", 16, "peers")
		l        = flag.Int("L", 2048, "input bits")
		seeds    = flag.Int("seeds", 3, "seeds per cell")
		liveRT   = flag.Bool("live", false, "also run the concurrent runtime")
		tcpRT    = flag.Bool("tcp", false, "also run the real-socket runtime")
		hardenRT = flag.Bool("harden", false, "add a column re-running each des cell under the hardening supervisor")
		srcCol   = flag.Bool("flaky-source", false, "add a SRC column re-running each des cell against a flaky source")
		srcSpec  = flag.String("source-faults", "fail=0.2,timeout=0.1,outage=1..3,seed=11",
			"source fault plan used by the -flaky-source column")
	)
	flag.Parse()

	runtimes := []runtimeSpec{{name: "des"}}
	if *liveRT {
		runtimes = append(runtimes, runtimeSpec{name: "live", live: true})
	}
	if *tcpRT {
		runtimes = append(runtimes, runtimeSpec{name: "tcp", tcp: true})
	}
	if *srcCol {
		// The flaky-source column is the des runtime again, but with every
		// query routed through the seeded fault plan: same grid, plus
		// outages, lost replies, and transient refusals to recover from.
		runtimes = append(runtimes, runtimeSpec{name: "src", source: *srcSpec})
	}

	type cell struct {
		proto    download.Protocol
		behavior download.FaultBehavior
		pass     map[string]int
		fail     map[string]int
		lastFail string
		// Hardened-column tallies: runs where the supervisor detected a
		// violation, escalated, and whether it ended correct.
		hPass, hFail, hDetect, hEscal, hCorrect int
	}
	var cells []*cell
	failures := 0

	for _, info := range download.Protocols() {
		tBound := faultBoundFor(info, *n)
		for _, behavior := range behaviorsFor(info) {
			c := &cell{
				proto: info.Protocol, behavior: behavior,
				pass: make(map[string]int), fail: make(map[string]int),
			}
			cells = append(cells, c)
			for seed := 0; seed < *seeds; seed++ {
				for _, rt := range runtimes {
					if !rt.supports(behavior) {
						continue
					}
					rep, err := download.Run(download.Options{
						Protocol: info.Protocol,
						N:        *n, T: tBound, L: *l,
						Seed:         int64(seed),
						Behavior:     behavior,
						Live:         rt.live,
						TCP:          rt.tcp,
						SourceFaults: rt.source,
					})
					switch {
					case err != nil:
						c.fail[rt.name]++
						c.lastFail = err.Error()
					case !rep.Correct:
						c.fail[rt.name]++
						if len(rep.Failures) > 0 {
							c.lastFail = rep.Failures[0]
						}
					default:
						c.pass[rt.name]++
					}
				}
				if *hardenRT {
					rep, err := download.RunHardened(download.Options{
						Protocol: info.Protocol,
						N:        *n, T: tBound, L: *l,
						Seed:     int64(seed),
						Behavior: behavior,
					}, harden.Policy{})
					switch {
					case err != nil:
						c.hFail++
						c.lastFail = err.Error()
					case !rep.Correct:
						c.hFail++
						if len(rep.Failures) > 0 {
							c.lastFail = rep.Failures[0]
						}
					default:
						c.hPass++
						h := rep.Hardening
						if h.Detected {
							c.hDetect++
						}
						if len(h.Escalations) > 1 {
							c.hEscal++
						}
						if h.Corrected {
							c.hCorrect++
						}
					}
				}
			}
			for _, rt := range runtimes {
				failures += c.fail[rt.name]
			}
			failures += c.hFail
		}
	}

	name := func(b download.FaultBehavior) string {
		if b == download.NoFaults {
			return "(none)"
		}
		return string(b)
	}
	fmt.Printf("%-12s %-14s", "PROTOCOL", "BEHAVIOR")
	for _, rt := range runtimes {
		fmt.Printf(" %-8s", strings.ToUpper(rt.name))
	}
	if *hardenRT {
		fmt.Printf(" %-16s", "HARDEN(d/e/c)")
	}
	fmt.Printf(" %s\n", "LAST FAILURE")
	for _, c := range cells {
		fmt.Printf("%-12s %-14s", c.proto, name(c.behavior))
		for _, rt := range runtimes {
			if !rt.supports(c.behavior) {
				fmt.Printf(" %-8s", "-")
				continue
			}
			fmt.Printf(" %-8s", fmt.Sprintf("%d/%d", c.pass[rt.name], c.fail[rt.name]))
		}
		if *hardenRT {
			// d/e/c: runs where a violation was detected, where the ladder
			// escalated, and where the escalation ended corrected.
			fmt.Printf(" %-16s", fmt.Sprintf("%d/%d d%d e%d c%d",
				c.hPass, c.hFail, c.hDetect, c.hEscal, c.hCorrect))
		}
		last := ""
		if c.lastFail != "" {
			last = c.lastFail
		}
		fmt.Printf(" %s\n", last)
	}
	if failures > 0 {
		fmt.Printf("\nFAILED: %d cell-runs failed\n", failures)
		return 1
	}
	fmt.Printf("\nOK: %d cells, all runs correct\n", len(cells))
	return 0
}
