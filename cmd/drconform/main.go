// Command drconform is the cross-runtime conformance gate.
//
// Sweep mode (default) runs the full grid: every protocol against every
// compatible fault behavior across several seeds, printing a pass/fail
// matrix with one column per enabled runtime. Every cell is additionally
// checked against the protocol's Q/M complexity envelope (docs/SPEC.md);
// a correct-but-over-budget run fails the row and the exit code.
//
// Fixture mode (-fixtures) runs the committed golden corpus
// (internal/conformance/fixtures): every pinned case on every enabled
// runtime, diffed field-by-field against the recorded expectation, plus
// the wire-frame round-trip and .dsr replay integrity checks. This is
// the contract any new runtime must pass before it can land.
//
// Examples:
//
//	drconform -n 16 -L 2048 -seeds 5
//	drconform -live -tcp -seeds 2
//	drconform -mirrors "mirrors=5,byz=3,behavior=mixed,seed=7"
//	drconform -fixtures -tcp
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/conformance"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, notifyInterrupt()))
}

// notifyInterrupt converts SIGINT/SIGTERM into a closed channel so the
// sweep can stop at a cell boundary and still flush its partial matrix
// (CI kills a timed-out job with SIGTERM; the evidence must survive).
func notifyInterrupt() <-chan struct{} {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-sig
		signal.Stop(sig)
		close(done)
	}()
	return done
}

// run executes the CLI and returns its exit code: 0 only when every
// cell-run passed — correctness, field-level fixture conformance, AND
// the Q/M envelopes. (A sweep that printed a failing row but exited 0
// would make the CI gate decorative; the regression test in main_test.go
// pins the nonzero exit.) An interrupted sweep flushes the partial
// matrix and exits 130, the shell convention for death-by-SIGINT.
func run(args []string, stdout io.Writer, interrupt <-chan struct{}) int {
	fs := flag.NewFlagSet("drconform", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 16, "peers (sweep mode)")
		l        = fs.Int("L", 2048, "input bits (sweep mode)")
		seeds    = fs.Int("seeds", 3, "seeds per cell (sweep mode)")
		liveRT   = fs.Bool("live", false, "also run the concurrent runtime")
		tcpRT    = fs.Bool("tcp", false, "also run the real-socket runtime")
		hardenRT = fs.Bool("harden", false, "add a column re-running each des cell under the hardening supervisor")
		srcCol   = fs.Bool("flaky-source", false, "add a SRC column re-running each des cell against a flaky source")
		srcSpec  = fs.String("source-faults", "fail=0.2,timeout=0.1,outage=1..3,seed=11",
			"source fault plan used by the -flaky-source column")
		mirrors = fs.String("mirrors", "",
			"add a MIR column re-running each des cell through this untrusted mirror fleet plan (source.ParseMirrorPlan grammar)")
		fixtures = fs.Bool("fixtures", false, "run the committed golden fixture corpus instead of the sweep grid")
		fixDir   = fs.String("fixture-dir", conformance.DefaultDir, "fixture corpus directory (fixture mode)")
		liveOff  = fs.Bool("no-live", false, "drop the live column from fixture mode (it is on by default there)")
		smOff    = fs.Bool("no-sm", false, "drop the state-machine scheduler column from fixture mode (on by default there)")
		scale    = fs.Duration("live-scale", 500*time.Microsecond, "live runtime time scale in fixture mode")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *fixtures {
		return runFixtures(stdout, *fixDir, *tcpRT, !*liveOff, !*smOff, *scale)
	}

	rep := conformance.RunGrid(conformance.GridConfig{
		N: *n, L: *l, Seeds: *seeds,
		Live: *liveRT, TCP: *tcpRT, Harden: *hardenRT,
		FlakySource: *srcCol, SourcePlan: *srcSpec,
		Mirrors:   *mirrors,
		Interrupt: interrupt,
	})
	rep.Write(stdout)
	if rep.Interrupted {
		return 130
	}
	if rep.Failures > 0 {
		return 1
	}
	return 0
}

func runFixtures(stdout io.Writer, dir string, tcp, live, sm bool, scale time.Duration) int {
	corpus, err := conformance.Load(dir)
	if err != nil {
		fmt.Fprintf(stdout, "drconform: %v\n", err)
		return 1
	}
	runtimes := []conformance.Runtime{conformance.DES}
	if sm {
		runtimes = append(runtimes, conformance.SM)
	}
	if live {
		runtimes = append(runtimes, conformance.Live)
	}
	if tcp {
		runtimes = append(runtimes, conformance.TCP)
	}
	rep := conformance.RunFixtures(corpus, conformance.Config{
		Runtimes:  runtimes,
		LiveScale: scale,
	})
	rep.WriteMatrix(stdout)
	if rep.Failed() {
		fmt.Fprintf(stdout, "\nFAILED: fixture conformance\n")
		return 1
	}
	fmt.Fprintf(stdout, "\nOK: %d cases × %d runtimes conform (corpus v%d, %d frames, %d replays)\n",
		len(corpus.Results.Cases), len(runtimes), conformance.CorpusVersion,
		len(corpus.Frames.Frames), len(corpus.Replays.Replays))
	return 0
}
