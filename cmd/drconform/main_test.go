package main

import (
	"strings"
	"testing"

	"repro/download"
	"repro/internal/conformance"
)

// TestExitCodePropagatesEnvelopeFailure is the regression test for the
// bug where drconform printed a failing row but still exited 0, making
// the CI gate decorative: a protocol row that violates its Q/M bound
// must drive a nonzero exit. The violation is provoked by substituting
// an impossible envelope for naive (Q must be ≤ 0 bits), so the same
// small grid that passes below fails here.
func TestExitCodePropagatesEnvelopeFailure(t *testing.T) {
	saved := conformance.Envelopes[download.Naive]
	conformance.Envelopes[download.Naive] = conformance.Envelope{
		MaxQ: func(n, tb, L, b int) int { return 0 },
	}
	defer func() { conformance.Envelopes[download.Naive] = saved }()

	var out strings.Builder
	code := run([]string{"-n", "6", "-L", "64", "-seeds", "1"}, &out, nil)
	if code == 0 {
		t.Fatalf("envelope violation exited 0:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "envelope: Q") {
		t.Fatalf("violation not reported in output:\n%s", out.String())
	}
}

// TestExitCodeCleanGrid pins the passing path of the same grid: exit 0
// and an OK summary.
func TestExitCodeCleanGrid(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-n", "6", "-L", "64", "-seeds", "1"}, &out, nil); code != 0 {
		t.Fatalf("clean grid exited %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "OK:") {
		t.Fatalf("no OK summary:\n%s", out.String())
	}
}

// TestExitCodeFixtureMode runs the committed corpus (des column only,
// for speed) through the CLI path and requires exit 0.
func TestExitCodeFixtureMode(t *testing.T) {
	var out strings.Builder
	code := run([]string{"-fixtures", "-no-live",
		"-fixture-dir", "../../internal/conformance/fixtures"}, &out, nil)
	if code != 0 {
		t.Fatalf("fixture mode exited %d:\n%s", code, out.String())
	}
}

// TestExitCodeBadFlags pins usage errors to exit 2, distinct from
// conformance failures.
func TestExitCodeBadFlags(t *testing.T) {
	var out strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, nil); code != 2 {
		t.Fatalf("bad flag exited %d", code)
	}
}

// TestExitCodeInterrupt pins the signal contract: a sweep whose
// interrupt channel fires must still flush the (partial) matrix and
// exit 130, so an interrupted CI job uploads the evidence it has
// instead of dying silently.
func TestExitCodeInterrupt(t *testing.T) {
	interrupt := make(chan struct{})
	close(interrupt) // fires before the first cell-run
	var out strings.Builder
	code := run([]string{"-n", "6", "-L", "64", "-seeds", "3"}, &out, interrupt)
	if code != 130 {
		t.Fatalf("interrupted sweep exited %d, want 130:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "INTERRUPTED") {
		t.Fatalf("partial matrix not flushed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "PROTOCOL") {
		t.Fatalf("matrix header missing from flush:\n%s", out.String())
	}
}
